"""Synthetic multi-DNN task-set generation for schedulability sweeps.

The generator mirrors the methodology of the real-time literature this
paper comes from: utilizations from **UUniFast**, task bodies drawn from
the model zoo, periods derived so each task's *CPU* utilization matches
its UUniFast share (``T_i = C_i / u_i``), deadlines implicit or
constrained by a sampled ratio.

Segmentation and SRAM budgeting follow the same policy as the framework
(granularity normalization, minimum-plus-proportional budgets), so every
compared system sees the same staged workload.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.pipeline import SegmentedModel
from repro.core.priority import deadline_monotonic
from repro.core.segcache import (
    cached_build_model,
    cached_refine_model,
    cached_search_segmentation,
)
from repro.core.segmentation import SegmentationError
from repro.dnn.models import Model
from repro.dnn.quantization import INT8, Quantization
from repro.hw.platform import Platform
from repro.sched.task import TaskSet

#: Default model pool for synthetic sets: small/medium zoo entries that a
#: handful of tasks can share one MCU's SRAM with.
DEFAULT_MODEL_POOL = (
    "tinyconv",
    "lenet5",
    "ds-cnn",
    "autoencoder",
    "resnet8",
    "mobilenet-v1-0.25",
)


def uunifast(n: int, total_util: float, rng: random.Random) -> List[float]:
    """Draw ``n`` utilizations summing to ``total_util`` (UUniFast).

    The classic unbiased algorithm (Bini & Buttazzo 2005).
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if total_util <= 0:
        raise ValueError(f"total_util must be positive, got {total_util}")
    utils = []
    remaining = total_util
    for i in range(1, n):
        next_remaining = remaining * rng.random() ** (1.0 / (n - i))
        utils.append(remaining - next_remaining)
        remaining = next_remaining
    utils.append(remaining)
    return utils


@dataclass(frozen=True)
class GeneratedCase:
    """One synthetic multi-DNN case.

    Attributes:
        taskset: RT-MDM segmented tasks with DM priorities (cycles).
        segmented: Per-task segmented models (for baseline derivation).
        refined: Per-task granularity-normalized models.
        platform: The platform the case was generated for.
        quant: Quantization.
        target_util: The requested total CPU utilization.
        feasible: False when SRAM could not hold the drawn models at all
            (``taskset`` is None then; all systems count it unschedulable).
    """

    taskset: Optional[TaskSet]
    segmented: Dict[str, SegmentedModel]
    refined: Dict[str, Model]
    platform: Platform
    quant: Quantization
    target_util: float
    feasible: bool


def _budgets(
    refined: Sequence[Tuple[str, Model]],
    platform: Platform,
    quant: Quantization,
    buffers: int,
) -> Optional[Dict[str, int]]:
    """Minimum-plus-proportional SRAM split (framework policy)."""
    capacity = platform.usable_sram_bytes
    minima = {}
    weights = {}
    for name, model in refined:
        max_layer = max(layer.param_bytes(quant) for layer in model.layers)
        minima[name] = buffers * max_layer + model.peak_activation_bytes(quant)
        weights[name] = max(1, model.total_param_bytes(quant))
    total_min = sum(minima.values())
    if total_min > capacity:
        return None
    leftover = capacity - total_min
    total_weight = sum(weights.values())
    return {
        name: minima[name] + int(leftover * weights[name] / total_weight)
        for name, _ in refined
    }


def generate_case(
    platform: Platform,
    total_util: float,
    rng: random.Random,
    n_tasks: Optional[int] = None,
    model_pool: Sequence[str] = DEFAULT_MODEL_POOL,
    quant: Quantization = INT8,
    buffers: int = 2,
    deadline_ratio: Tuple[float, float] = (1.0, 1.0),
) -> GeneratedCase:
    """Draw one synthetic multi-DNN task set at ``total_util``.

    Args:
        platform: Target hardware.
        total_util: Target total CPU utilization (sum of ``C_i / T_i``).
        rng: Seeded random source (reproducibility).
        n_tasks: Number of tasks; default uniform in [3, 5].
        model_pool: Zoo names to draw from (with replacement).
        quant: Quantization scheme.
        buffers: Staging depth for the RT-MDM tasks.
        deadline_ratio: ``(lo, hi)`` range for ``D/T`` sampling;
            ``(1.0, 1.0)`` gives implicit deadlines.
    """
    n = n_tasks if n_tasks is not None else rng.randint(3, 5)
    names = [f"t{i}" for i in range(n)]
    models = [cached_build_model(rng.choice(list(model_pool))) for _ in range(n)]
    utils = uunifast(n, total_util, rng)
    chunk = max(2048, platform.usable_sram_bytes // (n * buffers * 2))
    # First pass: estimate periods from total compute to derive the
    # non-preemptive section cap (framework policy: min deadline / 8).
    est_deadlines = []
    for model, util, _ in zip(models, utils, names):
        total_compute = sum(
            platform.compute_cycles(layer, quant.weight_bytes) for layer in model.layers
        )
        est_deadlines.append(
            max(1, round(total_compute / util)) * deadline_ratio[0]
        )
    cap = max(1000, int(min(est_deadlines)) // 8)
    macs_cap = max(1000, (cap - 4000) // 5)
    # The cached planner quantizes the granularity knobs down to coarse
    # deterministic ladders (see repro.core.segcache) so paired draws
    # across sweep points share planning work; quantization applies on
    # cache hits and misses alike, keeping results path-independent.
    refined = {
        name: cached_refine_model(model, quant, chunk, macs_cap)
        for name, model in zip(names, models)
    }
    budgets = _budgets(list(refined.items()), platform, quant, buffers)
    if budgets is None:
        return GeneratedCase(
            taskset=None,
            segmented={},
            refined=refined,
            platform=platform,
            quant=quant,
            target_util=total_util,
            feasible=False,
        )
    segmented = {}
    tasks = []
    for name, util in zip(names, utils):
        try:
            seg = cached_search_segmentation(
                refined[name],
                platform,
                budgets[name],
                quant=quant,
                buffers=buffers,
                max_segment_compute=cap,
            )
        except SegmentationError:
            return GeneratedCase(
                taskset=None,
                segmented={},
                refined=refined,
                platform=platform,
                quant=quant,
                target_util=total_util,
                feasible=False,
            )
        segmented[name] = seg
        segments = seg.segments()
        total_compute = sum(s.compute_cycles for s in segments)
        period = max(1, round(total_compute / util))
        ratio = rng.uniform(*deadline_ratio)
        deadline = max(1, min(period, round(period * ratio)))
        tasks.append(seg.to_task(period=period, deadline=deadline, name=name))
    taskset = deadline_monotonic(TaskSet.of(tasks))
    return GeneratedCase(
        taskset=taskset,
        segmented=segmented,
        refined=refined,
        platform=platform,
        quant=quant,
        target_util=total_util,
        feasible=True,
    )
