"""Unit tests for quantization schemes."""

import pytest

from repro.dnn.quantization import FLOAT32, INT8, Quantization


class TestQuantization:
    def test_int8_widths(self):
        assert INT8.weight_nbytes(100) == 100
        assert INT8.activation_nbytes(100) == 100
        assert INT8.bias_nbytes(10) == 40  # int32 biases

    def test_float32_widths(self):
        assert FLOAT32.weight_nbytes(100) == 400
        assert FLOAT32.activation_nbytes(3) == 12

    def test_fractional_widths_round_up(self):
        int4 = Quantization(name="int4", weight_bytes=0.5, activation_bytes=1.0)
        assert int4.weight_nbytes(7) == 4  # ceil(3.5)

    def test_zero_counts(self):
        assert INT8.weight_nbytes(0) == 0
        assert INT8.bias_nbytes(0) == 0

    def test_invalid_widths_rejected(self):
        with pytest.raises(ValueError):
            Quantization(name="bad", weight_bytes=0.0, activation_bytes=1.0)
        with pytest.raises(ValueError):
            Quantization(name="bad", weight_bytes=1.0, activation_bytes=-1.0)
