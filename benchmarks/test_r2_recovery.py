"""Benchmark for EXP-R2: recovery ladders under persistent flash faults."""

from conftest import bench_experiment


def test_r2_recovery(benchmark):
    bench_experiment(benchmark, "EXP-R2", n_sets=4)
