"""SRAM buffer planning: lay out every task's staging and activation regions.

Each task gets ``buffers`` equally-sized weight staging slots (sized for
its largest segment) plus a resident activation region (its model's peak
working set).  Regions are packed back-to-back in the usable SRAM window;
the plan either fits or reports exactly how many bytes are missing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.core.pipeline import SegmentedModel
from repro.hw.mcu import SramRegion
from repro.hw.platform import Platform

#: Alignment for DMA-targeted buffers (cache line / burst alignment).
BUFFER_ALIGN = 32


def _align(value: int, alignment: int = BUFFER_ALIGN) -> int:
    """Round ``value`` up to ``alignment``."""
    return (value + alignment - 1) // alignment * alignment


@dataclass(frozen=True)
class BufferPlan:
    """SRAM regions of one task.

    Attributes:
        task_name: Owning task.
        slot_bytes: Size of each weight staging slot (aligned).
        slots: The staging slot regions.
        activation: The resident activation region.
    """

    task_name: str
    slot_bytes: int
    slots: Tuple[SramRegion, ...]
    activation: SramRegion

    @property
    def total_bytes(self) -> int:
        """Bytes this task occupies in SRAM."""
        return sum(r.size for r in self.slots) + self.activation.size

    @property
    def regions(self) -> Tuple[SramRegion, ...]:
        """All regions of this task."""
        return (*self.slots, self.activation)


@dataclass(frozen=True)
class SramPlan:
    """A complete SRAM layout for a task set.

    Attributes:
        plans: Per-task buffer plans, in allocation order.
        capacity: Usable SRAM bytes of the platform.
        used: Bytes allocated.
    """

    plans: Tuple[BufferPlan, ...]
    capacity: int
    used: int

    @property
    def fits(self) -> bool:
        """Whether the layout fits the usable SRAM window."""
        return self.used <= self.capacity

    @property
    def free_bytes(self) -> int:
        """Remaining bytes (negative when the plan does not fit)."""
        return self.capacity - self.used

    def plan_for(self, task_name: str) -> BufferPlan:
        """Look up a task's plan."""
        for plan in self.plans:
            if plan.task_name == task_name:
                return plan
        raise KeyError(f"no buffer plan for task {task_name!r}")

    def verify_disjoint(self) -> None:
        """Assert no two regions overlap (property-test invariant)."""
        regions: List[Tuple[str, SramRegion]] = []
        for plan in self.plans:
            for region in plan.regions:
                regions.append((plan.task_name, region))
        for i, (name_a, a) in enumerate(regions):
            for name_b, b in regions[i + 1:]:
                if a.overlaps(b):
                    raise AssertionError(
                        f"SRAM regions overlap: {name_a}:{a} vs {name_b}:{b}"
                    )


def plan_sram(
    segmented_models: Sequence[Tuple[str, SegmentedModel]],
    platform: Platform,
) -> SramPlan:
    """Pack every task's staging slots and activation region into SRAM.

    Args:
        segmented_models: ``(task_name, segmented_model)`` pairs in
            allocation order.
        platform: Provides the usable SRAM capacity.

    Returns:
        An :class:`SramPlan`; check :attr:`SramPlan.fits` before use.
    """
    offset = 0
    plans: List[BufferPlan] = []
    for task_name, segmented in segmented_models:
        if segmented.resident:
            slot_bytes = 0  # weights in internal flash: nothing to stage
        else:
            slot_bytes = _align(segmented.max_segment_weight_bytes)
        slots = []
        for i in range(segmented.buffers if slot_bytes else 0):
            slots.append(
                SramRegion(
                    name=f"{task_name}/slot{i}",
                    offset=offset,
                    size=slot_bytes,
                    purpose="weight staging",
                )
            )
            offset += slot_bytes
        act_bytes = _align(segmented.model.peak_activation_bytes(segmented.quant))
        activation = SramRegion(
            name=f"{task_name}/act",
            offset=offset,
            size=act_bytes,
            purpose="activations",
        )
        offset += act_bytes
        plans.append(
            BufferPlan(
                task_name=task_name,
                slot_bytes=slot_bytes,
                slots=tuple(slots),
                activation=activation,
            )
        )
    return SramPlan(
        plans=tuple(plans), capacity=platform.usable_sram_bytes, used=offset
    )
