"""Workload generation: synthetic task sets and named scenarios.

* :mod:`repro.workload.taskset` — UUniFast-based synthetic multi-DNN task
  sets at a target CPU utilization (the x-axis of the schedulability
  sweeps).
* :mod:`repro.workload.scenarios` — named, realistic multi-DNN scenarios
  (the case study and friends).
* :mod:`repro.workload.arrivals` — Poisson request traces for the online
  runtime (:mod:`repro.online`).
"""

from repro.workload.arrivals import poisson_trace
from repro.workload.scenarios import SCENARIOS, get_scenario
from repro.workload.taskset import GeneratedCase, generate_case, uunifast

__all__ = [
    "uunifast",
    "generate_case",
    "GeneratedCase",
    "SCENARIOS",
    "get_scenario",
    "poisson_trace",
]
