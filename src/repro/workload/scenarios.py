"""Named multi-DNN scenarios: realistic deployments for case studies.

Each scenario is a list of :class:`~repro.core.framework.TaskSpec`
factories (models are built lazily so importing this module stays cheap).
Periods reflect typical TinyML duty cycles: keyword spotting strides of
a few hundred milliseconds, visual wake words around 1 Hz, anomaly
detection a few times per second.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.framework import TaskSpec
from repro.dnn.zoo import build_model


@dataclass(frozen=True)
class Scenario:
    """A named multi-DNN deployment scenario.

    Attributes:
        name: Scenario key.
        description: One-line summary for reports.
        platform_key: Suggested platform preset.
        tasks: ``(task_name, model_name, period_s, deadline_s)`` tuples;
            ``deadline_s`` of 0 means implicit (= period).
    """

    name: str
    description: str
    platform_key: str
    tasks: Tuple[Tuple[str, str, float, float], ...]

    def specs(self) -> List[TaskSpec]:
        """Materialize the scenario's task specs (builds the models)."""
        specs = []
        for task_name, model_name, period_s, deadline_s in self.tasks:
            specs.append(
                TaskSpec(
                    name=task_name,
                    model=build_model(model_name),
                    period_s=period_s,
                    deadline_s=deadline_s if deadline_s > 0 else None,
                )
            )
        return specs


SCENARIOS: Dict[str, Scenario] = {
    # The paper-style case study: smart doorbell / voice assistant node.
    "doorbell": Scenario(
        name="doorbell",
        description="KWS + visual wake word + mic anomaly detection",
        platform_key="f746-qspi",
        tasks=(
            ("kws", "ds-cnn", 0.200, 0.0),
            ("vww", "mobilenet-v1-0.25", 1.000, 0.0),
            ("anomaly", "autoencoder", 0.500, 0.0),
        ),
    ),
    # Industrial condition monitoring: two sensor models + periodic vision.
    "industrial": Scenario(
        name="industrial",
        description="vibration anomaly + acoustic anomaly + gauge reading",
        platform_key="f746-octal",
        tasks=(
            ("vibration", "autoencoder", 0.250, 0.0),
            ("acoustic", "ds-cnn", 0.400, 0.0),
            ("gauge", "resnet8", 1.000, 0.0),
        ),
    ),
    # Camera-heavy smart retail node on a bigger part.
    "retail": Scenario(
        name="retail",
        description="person detection + product recognition + KWS",
        platform_key="h743-octal",
        tasks=(
            ("person", "mcunet-vww", 0.500, 0.0),
            ("product", "mobilenet-v2-0.35", 1.000, 0.0),
            ("kws", "ds-cnn", 0.250, 0.0),
        ),
    ),
    # Delivery drone: obstacle vision + voice channel on the big part.
    "drone": Scenario(
        name="drone",
        description="obstacle detection + command KWS + motor anomaly",
        platform_key="h743-sdram",
        tasks=(
            ("obstacle", "mcunet-vww", 0.800, 0.0),
            ("command", "kws-cnn", 0.500, 0.0),
            ("motor", "autoencoder", 0.250, 0.0),
        ),
    ),
    # Smart camera with the heavy mobilenet over slow SPI PSRAM.
    "camera": Scenario(
        name="camera",
        description="large classifier + wake word on a low-power part",
        platform_key="l4r5-spi",
        tasks=(
            ("classify", "mobilenet-v1-0.5", 3.000, 0.0),
            ("wake", "tinyconv", 0.200, 0.0),
        ),
    ),
    # Low-cost wearable: everything small, tight SRAM.
    "wearable": Scenario(
        name="wearable",
        description="gesture + KWS on a 128 KiB part",
        platform_key="f446-qspi",
        tasks=(
            ("gesture", "lenet5", 0.100, 0.0),
            ("kws", "tinyconv", 0.150, 0.0),
        ),
    ),
}


def get_scenario(name: str) -> Scenario:
    """Look up a scenario by name, with a helpful error."""
    try:
        return SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; available: {sorted(SCENARIOS)}"
        ) from None
