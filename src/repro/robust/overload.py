"""Overload-management policies: what to do when a job runs late.

The nominal simulator implements ``CONTINUE`` semantics: a job that
misses its deadline keeps running, pushing every successor later — a
transient overload snowballs into a queue that never drains.  Real
systems shed load instead.  :class:`OverrunPolicy` names the strategies
the simulator implements, and :class:`OverloadManager` keeps the
per-task mode state for the ``DEGRADE`` policy:

* ``CONTINUE`` — run every job to completion (baseline; the pre-existing
  simulator behavior, bit-identical).
* ``ABORT_AT_DEADLINE`` — kill a job the instant its absolute deadline
  passes: in-flight compute is cancelled (an RTOS can kill the thread);
  an in-flight DMA transfer drains (hardware streams are
  non-preemptive) but its result is discarded.  The freed CPU/DMA time
  goes to the next jobs.
* ``SKIP_NEXT`` — a job that completes after its deadline suppresses
  the task's *next* release (firm ``(m, k)``-style load shedding with
  ``m = k - 1``); the release schedule itself is unchanged.
* ``DEGRADE`` — after ``miss_threshold`` consecutive misses the task
  switches to a registered fallback segment list (a smaller / more
  aggressively quantized model variant) and recovers to the full model
  after ``recover_after`` consecutive clean jobs.

The manager is pure bookkeeping — it owns no randomness, so overload
handling never perturbs determinism.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

from repro.sched.task import PeriodicTask, Segment


class OverrunPolicy(enum.Enum):
    """Simulator reaction to jobs that overrun their deadline."""

    CONTINUE = "continue"
    ABORT_AT_DEADLINE = "abort"
    SKIP_NEXT = "skip-next"
    DEGRADE = "degrade"


@dataclass(frozen=True)
class DegradeConfig:
    """Parameters of the ``DEGRADE`` policy.

    Attributes:
        fallbacks: Per-task fallback segment lists (task name → segment
            tuple).  Tasks without an entry never degrade.
        miss_threshold: Consecutive deadline misses before switching to
            the fallback variant.
        recover_after: Consecutive clean (on-time) jobs in degraded mode
            before switching back to the full model.
    """

    fallbacks: Mapping[str, Tuple[Segment, ...]]
    miss_threshold: int = 2
    recover_after: int = 3

    def __post_init__(self) -> None:
        if self.miss_threshold < 1:
            raise ValueError(
                f"miss_threshold must be >= 1, got {self.miss_threshold}"
            )
        if self.recover_after < 1:
            raise ValueError(
                f"recover_after must be >= 1, got {self.recover_after}"
            )
        for name, segments in self.fallbacks.items():
            if not segments:
                raise ValueError(f"fallback for {name!r} must be non-empty")


def degraded_variant(task: PeriodicTask, factor: float = 0.5) -> Tuple[Segment, ...]:
    """A scaled-down fallback segment list for ``task``.

    Stands in for a smaller or more aggressively quantized model
    variant: every segment's compute and load shrink by ``factor``
    (compute stays >= 1 cycle; loads may reach 0).  Useful for
    experiments; deployments register real variant segmentations.
    """
    if not 0.0 < factor <= 1.0:
        raise ValueError(f"factor must be in (0, 1], got {factor}")
    return tuple(
        Segment(
            name=f"{s.name}~",
            load_cycles=int(s.load_cycles * factor),
            compute_cycles=max(1, math.ceil(s.compute_cycles * factor)),
            load_bytes=int(s.load_bytes * factor),
            xip_bytes=int(s.xip_bytes * factor),
        )
        for s in task.segments
    )


@dataclass
class _TaskMode:
    """Per-task DEGRADE bookkeeping."""

    degraded: bool = False
    consecutive_misses: int = 0
    clean_jobs: int = 0


class OverloadManager:
    """Tracks per-task overload state and decides mode transitions.

    The simulator calls :meth:`segments_for` at every release and
    :meth:`job_finished` at every completion/abort; the returned
    transition (``"degrade"`` / ``"recover"`` / None) is traced.
    """

    def __init__(
        self, policy: OverrunPolicy, degrade: Optional[DegradeConfig] = None
    ) -> None:
        if policy is OverrunPolicy.DEGRADE and degrade is None:
            raise ValueError("OverrunPolicy.DEGRADE needs a DegradeConfig")
        self.policy = policy
        self.degrade = degrade
        self._modes: Dict[str, _TaskMode] = {}

    def _mode(self, task_name: str) -> _TaskMode:
        return self._modes.setdefault(task_name, _TaskMode())

    def is_degraded(self, task_name: str) -> bool:
        """Whether ``task_name`` currently releases fallback jobs."""
        return self._mode(task_name).degraded

    def segments_for(self, task: PeriodicTask) -> Tuple[Segment, ...]:
        """The segment list a job of ``task`` released now executes."""
        if (
            self.policy is OverrunPolicy.DEGRADE
            and self.degrade is not None
            and self._mode(task.name).degraded
        ):
            fallback = self.degrade.fallbacks.get(task.name)
            if fallback is not None:
                return tuple(fallback)
        return task.segments

    def job_finished(self, task_name: str, missed: bool) -> Optional[str]:
        """Record one job outcome; returns a mode transition, if any.

        ``missed`` covers both late completions and aborted jobs.
        """
        if self.policy is not OverrunPolicy.DEGRADE or self.degrade is None:
            return None
        if task_name not in self.degrade.fallbacks:
            return None
        mode = self._mode(task_name)
        if missed:
            mode.consecutive_misses += 1
            mode.clean_jobs = 0
            if (
                not mode.degraded
                and mode.consecutive_misses >= self.degrade.miss_threshold
            ):
                mode.degraded = True
                mode.consecutive_misses = 0
                return "degrade"
        else:
            mode.clean_jobs += 1
            mode.consecutive_misses = 0
            if mode.degraded and mode.clean_jobs >= self.degrade.recover_after:
                mode.degraded = False
                mode.clean_jobs = 0
                return "recover"
        return None
