"""RT-MDM framework: the top-level user API.

:class:`RtMdm` takes DNN models with periods, a hardware platform and an
SRAM budget, and produces a :class:`Configuration`:

1. **Budgeting** — split usable SRAM among tasks: each task gets its
   minimum (finest-granularity) need, and the remainder is distributed
   proportionally to model weight size (bigger models benefit more from
   coarser segments).
2. **Segmentation** — per-task latency-minimizing segmentation within its
   budget (:func:`repro.core.segmentation.search_segmentation`).
3. **Buffer planning** — concrete SRAM layout with alignment
   (:func:`repro.core.buffers.plan_sram`).
4. **Priority assignment** — DM first, Audsley fallback
   (:func:`repro.core.priority.assign_priorities`).
5. **Admission** — the chosen schedulability analysis
   (:func:`repro.core.analysis.analyze`); the configuration is
   *admitted* only if every task's WCRT bound meets its deadline.

A :class:`Configuration` can then be simulated
(:meth:`Configuration.simulate`) to observe actual response times.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.analysis import AnalysisResult, analyze
from repro.core.buffers import BUFFER_ALIGN, SramPlan, plan_sram
from repro.core.pipeline import SegmentedModel
from repro.core.placement import (
    FlashPlacement,
    choose_flash_residents,
    resident_segmentation,
)
from repro.core.priority import assign_priorities, deadline_monotonic
from repro.core.segmentation import SegmentationError, search_segmentation
from repro.dnn.models import Model, refine_model
from repro.dnn.quantization import INT8, Quantization
from repro.hw.platform import Platform
from repro.sched.policies import CpuPolicy
from repro.sched.simulator import SimConfig, SimResult, simulate
from repro.sched.task import TaskSet

#: Non-preemptive section cap: min deadline divided by this (see
#: RtMdm._np_section_cap).
NP_CAP_DIVISOR = 8


@dataclass(frozen=True)
class TaskSpec:
    """One DNN inference task as specified by the user.

    Attributes:
        name: Unique task name.
        model: The DNN to run.
        period_s: Release period in seconds.
        deadline_s: Relative deadline in seconds (defaults to the period).
    """

    name: str
    model: Model
    period_s: float
    deadline_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.period_s <= 0:
            raise ValueError(f"task {self.name}: period_s must be positive")
        if self.deadline_s is not None and not 0 < self.deadline_s <= self.period_s:
            raise ValueError(
                f"task {self.name}: deadline_s must be in (0, period_s]"
            )


@dataclass(frozen=True)
class Configuration:
    """A fully-planned multi-DNN deployment.

    Attributes:
        platform: Target hardware.
        quant: Deployment quantization.
        taskset: Prioritized, segmented periodic tasks (cycles).
        segmented: Per-task segmented models.
        sram_plan: Concrete SRAM layout.
        analysis: Admission analysis result.
        feasible: False when SRAM could not hold the task set at all.
        infeasible_reason: Human-readable reason when not feasible.
    """

    platform: Platform
    quant: Quantization
    taskset: Optional[TaskSet]
    segmented: Dict[str, SegmentedModel]
    sram_plan: Optional[SramPlan]
    analysis: Optional[AnalysisResult]
    feasible: bool
    infeasible_reason: str = ""
    placement: Optional[FlashPlacement] = None

    @property
    def admitted(self) -> bool:
        """True iff the deployment is feasible *and* analysed schedulable."""
        return (
            self.feasible
            and self.analysis is not None
            and self.analysis.schedulable
        )

    def simulate(
        self,
        duration_s: Optional[float] = None,
        policy: CpuPolicy = CpuPolicy.FP_NP,
        phases: Optional[Sequence[int]] = None,
        record_trace: bool = False,
        abort_on_miss: bool = False,
    ) -> SimResult:
        """Run the discrete-event simulator on this configuration.

        Args:
            duration_s: Release horizon in seconds; defaults to two
                hyperperiods capped at 200 jobs of the slowest task.
            policy: CPU policy (default matches the analysis model).
            phases: Optional per-task release offsets in cycles.
            record_trace: Keep a full execution trace.
            abort_on_miss: Stop at the first deadline miss.
        """
        if not self.feasible or self.taskset is None:
            raise RuntimeError(
                f"cannot simulate an infeasible configuration: {self.infeasible_reason}"
            )
        taskset = self.taskset
        if phases is not None:
            taskset = taskset.with_phases(list(phases))
        if duration_s is not None:
            horizon = self.platform.mcu.seconds_to_cycles(duration_s)
        else:
            from repro.sched.rta import try_hyperperiod

            max_period = max(t.period for t in taskset)
            hp = try_hyperperiod([t.period for t in taskset])
            horizon = min(2 * hp, 200 * max_period) if hp else 200 * max_period
        config = SimConfig(
            policy=policy,
            dma_arbitration=self.platform.dma.arbitration,
            horizon=horizon,
            record_trace=record_trace,
            abort_on_miss=abort_on_miss,
        )
        return simulate(taskset, config)

    def report_rows(self) -> List[dict]:
        """Per-task summary rows (the case-study table)."""
        if not self.feasible or self.taskset is None:
            return []
        mcu = self.platform.mcu
        rows = []
        for task in self.taskset.sorted_by_priority():
            segmented = self.segmented[task.name]
            bound = self.analysis.wcrt[task.name] if self.analysis else None
            plan = self.sram_plan.plan_for(task.name) if self.sram_plan else None
            rows.append(
                {
                    "task": task.name,
                    "model": segmented.model.name,
                    "priority": task.priority,
                    "period_ms": mcu.cycles_to_ms(task.period),
                    "deadline_ms": mcu.cycles_to_ms(task.deadline),
                    "segments": task.num_segments,
                    "sram_kib": (plan.total_bytes / 1024) if plan else 0.0,
                    "latency_ms": mcu.cycles_to_ms(segmented.isolated_latency()),
                    "wcrt_ms": mcu.cycles_to_ms(bound) if bound is not None else None,
                    "weights_in": (
                        "flash"
                        if self.placement and self.placement.is_resident(task.name)
                        else "external"
                    ),
                    "admitted": bound is not None
                    and bound <= task.deadline,
                }
            )
        return rows


class RtMdm:
    """Builder for multi-DNN deployments on an MCU with external memory.

    Typical use::

        rt = RtMdm(get_platform("f746-qspi"))
        rt.add_task("kws", build_model("ds-cnn"), period_s=0.032)
        rt.add_task("vww", build_model("mobilenet-v1-0.25"), period_s=0.250)
        config = rt.configure()
        assert config.admitted
        result = config.simulate()
    """

    def __init__(
        self,
        platform: Platform,
        quant: Quantization = INT8,
        buffers: int = 2,
        analysis_method: str = "rtmdm",
        priority_strategy: str = "dm+audsley",
        max_stage_bytes: Optional[int] = None,
        use_internal_flash: bool = False,
        code_reserve_bytes: int = 256 * 1024,
    ) -> None:
        if buffers < 1:
            raise ValueError(f"buffers must be >= 1, got {buffers}")
        if code_reserve_bytes < 0:
            raise ValueError(
                f"code_reserve_bytes must be >= 0, got {code_reserve_bytes}"
            )
        self.platform = platform
        self.quant = quant
        self.buffers = buffers
        self.analysis_method = analysis_method
        self.priority_strategy = priority_strategy
        self.max_stage_bytes = max_stage_bytes
        self.use_internal_flash = use_internal_flash
        self.code_reserve_bytes = code_reserve_bytes
        self._specs: List[TaskSpec] = []

    def add_task(
        self,
        name: str,
        model: Model,
        period_s: float,
        deadline_s: Optional[float] = None,
    ) -> "RtMdm":
        """Register one DNN inference task; returns self for chaining."""
        if any(s.name == name for s in self._specs):
            raise ValueError(f"duplicate task name {name!r}")
        self._specs.append(
            TaskSpec(name=name, model=model, period_s=period_s, deadline_s=deadline_s)
        )
        return self

    # ------------------------------------------------------------------
    # Budgeting
    # ------------------------------------------------------------------
    def _minimal_need(self, spec: TaskSpec) -> int:
        """Finest-granularity SRAM need of one task (plus alignment slack)."""
        max_layer = max(
            layer.param_bytes(self.quant) for layer in spec.model.layers
        )
        act = spec.model.peak_activation_bytes(self.quant)
        return (
            self.buffers * max_layer
            + act
            + (self.buffers + 1) * BUFFER_ALIGN
        )

    def _budgets(
        self, specs: List[TaskSpec], capacity: int
    ) -> Optional[Dict[str, int]]:
        """Split ``capacity`` SRAM bytes among ``specs``.

        Each task gets its minimum (finest-granularity) need; the
        remainder is distributed proportionally to model weight size.
        None when even the minima don't fit.
        """
        if not specs:
            return {}
        minima = {s.name: self._minimal_need(s) for s in specs}
        total_min = sum(minima.values())
        if total_min > capacity:
            return None
        leftover = capacity - total_min
        weights = {
            s.name: max(1, s.model.total_param_bytes(self.quant)) for s in specs
        }
        total_weight = sum(weights.values())
        budgets = {}
        for spec in specs:
            share = int(leftover * weights[spec.name] / total_weight)
            budgets[spec.name] = minima[spec.name] + share
        return budgets

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    def _stage_chunk_bytes(self) -> int:
        """Filter-group chunk cap for granularity normalization.

        Default: a fraction of usable SRAM that leaves room for every
        task's buffers — no single staged chunk may claim more than
        ``usable / (n_tasks * buffers * 2)`` bytes (floored at 2 KiB so
        tiny platforms still converge).
        """
        if self.max_stage_bytes is not None:
            return self.max_stage_bytes
        denom = max(1, len(self._specs)) * self.buffers * 2
        return max(2048, self.platform.usable_sram_bytes // denom)

    def _np_section_cap(self) -> int:
        """Compute-cycle cap per segment: a fraction of the tightest deadline.

        Segment boundaries are the only preemption points, so the longest
        segment bounds priority-inversion blocking.  Capping sections at
        ``min_deadline / NP_CAP_DIVISOR`` keeps total blocking a modest
        deadline fraction while EXP-F9 shows the latency cost is ~1%.
        """
        mcu = self.platform.mcu
        min_deadline = min(
            mcu.seconds_to_cycles(
                spec.deadline_s if spec.deadline_s is not None else spec.period_s
            )
            for spec in self._specs
        )
        return max(1000, min_deadline // NP_CAP_DIVISOR)

    def _infeasible(
        self,
        reason: str,
        segmented: Optional[Dict[str, SegmentedModel]] = None,
        sram_plan: Optional[SramPlan] = None,
        placement: Optional[FlashPlacement] = None,
    ) -> Configuration:
        return Configuration(
            platform=self.platform,
            quant=self.quant,
            taskset=None,
            segmented=segmented or {},
            sram_plan=sram_plan,
            analysis=None,
            feasible=False,
            infeasible_reason=reason,
            placement=placement,
        )

    def _place_weights(self) -> FlashPlacement:
        """Decide which models stay in internal flash (if enabled)."""
        if not self.use_internal_flash:
            return FlashPlacement(resident=(), flash_used=0, flash_budget=0)
        budget = self.platform.mcu.flash_bytes - self.code_reserve_bytes
        return choose_flash_residents(
            [(s.name, s.model, s.period_s) for s in self._specs],
            flash_budget=budget,
            quant=self.quant,
        )

    def configure(self) -> Configuration:
        """Plan the deployment end to end (see module docstring)."""
        if not self._specs:
            raise RuntimeError("add at least one task before configure()")
        chunk = self._stage_chunk_bytes()
        cap = self._np_section_cap()
        macs_cap = max(1000, (cap - 4000) // 5)  # ~5 cycles/MAC worst kind
        self._specs = [
            TaskSpec(
                name=spec.name,
                model=refine_model(spec.model, self.quant, chunk, macs_cap),
                period_s=spec.period_s,
                deadline_s=spec.deadline_s,
            )
            for spec in self._specs
        ]
        placement = self._place_weights()
        segmented: Dict[str, SegmentedModel] = {}
        resident_sram = 0
        for spec in self._specs:
            if placement.is_resident(spec.name):
                segmented[spec.name] = resident_segmentation(
                    spec.model, self.platform, self.quant, max_segment_compute=cap
                )
                resident_sram += segmented[spec.name].sram_need_bytes() + BUFFER_ALIGN
        external_specs = [
            s for s in self._specs if not placement.is_resident(s.name)
        ]
        budgets = self._budgets(
            external_specs, self.platform.usable_sram_bytes - resident_sram
        )
        if budgets is None:
            return self._infeasible(
                "SRAM cannot hold the finest-granularity buffers of all tasks",
                placement=placement,
            )
        try:
            for spec in external_specs:
                segmented[spec.name] = search_segmentation(
                    spec.model,
                    self.platform,
                    # Alignment slack reserved in _minimal_need.
                    budgets[spec.name] - (self.buffers + 1) * BUFFER_ALIGN,
                    quant=self.quant,
                    buffers=self.buffers,
                    max_segment_compute=cap,
                )
        except SegmentationError as error:
            return self._infeasible(str(error), placement=placement)
        sram_plan = plan_sram(
            [(spec.name, segmented[spec.name]) for spec in self._specs],
            self.platform,
        )
        if not sram_plan.fits:
            return self._infeasible(
                f"SRAM plan exceeds capacity by {-sram_plan.free_bytes} bytes",
                segmented=segmented,
                sram_plan=sram_plan,
                placement=placement,
            )
        mcu = self.platform.mcu
        tasks = []
        for spec in self._specs:
            period = mcu.seconds_to_cycles(spec.period_s)
            deadline = (
                mcu.seconds_to_cycles(spec.deadline_s)
                if spec.deadline_s is not None
                else period
            )
            tasks.append(
                segmented[spec.name].to_task(
                    period=period, deadline=deadline, name=spec.name
                )
            )
        taskset = TaskSet.of(tasks)
        prioritized = assign_priorities(
            taskset, self.priority_strategy, self.analysis_method
        )
        if prioritized is None:
            prioritized = deadline_monotonic(taskset)  # best effort for reports
        analysis = analyze(prioritized, self.analysis_method)
        return Configuration(
            platform=self.platform,
            quant=self.quant,
            taskset=prioritized,
            segmented=segmented,
            sram_plan=sram_plan,
            analysis=analysis,
            feasible=True,
            placement=placement,
        )
