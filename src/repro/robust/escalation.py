"""Persistent external-memory fault models and the transfer fault handler.

:mod:`repro.robust.faults` models *transient* faults: a CRC failure is
retried and, after the retry budget, the transfer is assumed to succeed.
That assumption is wrong for the failure modes that actually kill
external-weight systems — a flash region wearing out (every read from it
fails CRC, forever), sustained bus degradation (a misbehaving shared
master stretching every transfer), and DMA-engine lockup (the transfer
never completes and only a watchdog recovers the engine).  This module
models those *persistent* faults and replaces silent optimism with an
explicit per-transfer fault-handler state machine:

* each transfer attempt may fail (persistently for bad regions,
  stochastically for CRC glitches and lockups);
* a failed attempt is retried after an exponentially growing backoff
  slot (``backoff_slot_cycles * 2**i`` before retry ``i + 1``);
* a locked-up attempt is cut short by a watchdog after
  ``watchdog_cycles`` instead of hanging the simulation;
* when the retry budget is exhausted the handler gives up and reports a
  :class:`FaultEvent` — the cycles are *lost* and the segment's weights
  are **not** staged.  Recovery is someone else's job (see
  :mod:`repro.robust.recovery`); the default reaction is to quarantine
  the task, never to pretend the data arrived.

All stochastic draws come from one dedicated ``random.Random(seed)``
consumed in simulation-event order, so runs reproduce bit-for-bit.  A
null configuration (:attr:`EscalationConfig.is_null`) never interferes;
the simulator then instantiates no handler at all and stays bit-identical
to the nominal engine.
"""

from __future__ import annotations

import enum
import json
import math
import random
from dataclasses import dataclass
from typing import Dict, List, NamedTuple, Optional, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sched.task import TaskSet


_FAULT_SCHEMA = "rtmdm-faults/1"


class FaultKind(enum.Enum):
    """Terminal classification of an unrecoverable transfer."""

    RETRY_EXHAUSTED = "retry-exhausted"
    BAD_REGION = "bad-region"
    WATCHDOG = "watchdog-timeout"


@dataclass(frozen=True)
class BadRegion:
    """A half-open byte range ``[start, end)`` of flash that went bad.

    Every read overlapping the region fails CRC deterministically — the
    model of a worn-out or corrupted erase block.  Addresses follow the
    deterministic :func:`flash_layout` placement.
    """

    start: int
    end: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.end < self.start:
            raise ValueError(
                f"bad region needs 0 <= start <= end, got [{self.start}, {self.end})"
            )

    def overlaps(self, lo: int, hi: int) -> bool:
        """Whether ``[lo, hi)`` intersects this region (empty spans never do)."""
        return lo < self.end and self.start < hi and lo < hi

    def to_dict(self) -> Dict[str, int]:
        return {"start": self.start, "end": self.end}


@dataclass(frozen=True)
class BusDegradation:
    """Sustained bus slowdown from ``start_cycle`` onward.

    Models a misbehaving shared master (or a flash die falling back to a
    slower read mode): every transfer attempt issued at or after
    ``start_cycle`` takes ``ceil(nominal * factor)`` cycles.
    """

    start_cycle: int = 0
    factor: float = 1.0

    def __post_init__(self) -> None:
        if self.start_cycle < 0:
            raise ValueError(f"start_cycle must be >= 0, got {self.start_cycle}")
        if self.factor < 1.0:
            raise ValueError(f"factor must be >= 1, got {self.factor}")

    @property
    def is_null(self) -> bool:
        return self.factor == 1.0

    def attempt_cycles(self, time: int, nominal: int) -> int:
        """Cycles one attempt takes when issued at ``time``."""
        if time >= self.start_cycle and self.factor > 1.0:
            return math.ceil(nominal * self.factor)
        return nominal


@dataclass(frozen=True)
class EscalationConfig:
    """Persistent-fault and fault-handler parameters.

    Attributes:
        bad_regions: Flash byte ranges whose reads always fail CRC.
        bus_degradation: Optional sustained bus slowdown.
        lockup_prob: Probability one attempt locks up the DMA engine
            (recovered by the watchdog after ``watchdog_cycles``).
        watchdog_cycles: Watchdog timeout aborting a hung transfer.
            Must be positive when ``lockup_prob > 0``.
        crc_fault_prob: Probability one attempt fails CRC transiently
            (on top of any persistent bad-region failure).
        max_retries: Retry budget per transfer; the handler makes at
            most ``max_retries + 1`` attempts.
        backoff_slot_cycles: Base backoff slot; retry ``i + 1`` waits
            ``backoff_slot_cycles * 2**i`` cycles after failure ``i``.
        crc_overhead_cycles: Extra engine-busy cycles charged per failed
            CRC check (re-reading the checksum block).
        mirror_bad: When True, mirror copies live in the bad region too
            (models a correlated failure defeating REMAP).
        max_faults_per_job: Optional cap on *transient* faults (CRC
            glitches and lockups) charged to one job — the hypothesis
            property tests use it to bound injected faults per job.
            Persistent bad-region failures are never capped (they are
            deterministic, not drawn).
        seed: Seed of the handler's dedicated random source.
    """

    bad_regions: Tuple[BadRegion, ...] = ()
    bus_degradation: Optional[BusDegradation] = None
    lockup_prob: float = 0.0
    watchdog_cycles: int = 0
    crc_fault_prob: float = 0.0
    max_retries: int = 3
    backoff_slot_cycles: int = 0
    crc_overhead_cycles: int = 0
    mirror_bad: bool = False
    max_faults_per_job: Optional[int] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.lockup_prob <= 1.0:
            raise ValueError(f"lockup_prob must be in [0, 1], got {self.lockup_prob}")
        if not 0.0 <= self.crc_fault_prob <= 1.0:
            raise ValueError(
                f"crc_fault_prob must be in [0, 1], got {self.crc_fault_prob}"
            )
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_slot_cycles < 0:
            raise ValueError(
                f"backoff_slot_cycles must be >= 0, got {self.backoff_slot_cycles}"
            )
        if self.crc_overhead_cycles < 0:
            raise ValueError(
                f"crc_overhead_cycles must be >= 0, got {self.crc_overhead_cycles}"
            )
        if self.watchdog_cycles < 0:
            raise ValueError(
                f"watchdog_cycles must be >= 0, got {self.watchdog_cycles}"
            )
        if self.lockup_prob > 0 and self.watchdog_cycles <= 0:
            raise ValueError("lockup_prob > 0 requires watchdog_cycles > 0")
        if self.max_faults_per_job is not None and self.max_faults_per_job < 0:
            raise ValueError(
                f"max_faults_per_job must be >= 0, got {self.max_faults_per_job}"
            )

    @property
    def is_null(self) -> bool:
        """True iff this configuration can never perturb a transfer."""
        degraded = (
            self.bus_degradation is not None and not self.bus_degradation.is_null
        )
        return (
            not self.bad_regions
            and not degraded
            and self.lockup_prob == 0.0
            and self.crc_fault_prob == 0.0
        )


@dataclass(frozen=True)
class FaultEvent:
    """One unrecoverable transfer, as raised by the fault handler.

    Attributes:
        time: Cycle at which the handler gave up (transfer end).
        task: Owning task name.
        job: Job index within the task.
        segment: Segment index whose staging failed.
        kind: Terminal classification (see :class:`FaultKind`).
        attempts: Transfer attempts made (``retries + 1``).
        lost_cycles: DMA-busy cycles consumed without staging anything.
    """

    time: int
    task: str
    job: int
    segment: int
    kind: FaultKind
    attempts: int
    lost_cycles: int

    def to_dict(self) -> Dict[str, object]:
        """A JSON-safe dict (round-trips through :meth:`from_dict`)."""
        return {
            "time": self.time,
            "task": self.task,
            "job": self.job,
            "segment": self.segment,
            "kind": self.kind.value,
            "attempts": self.attempts,
            "lost_cycles": self.lost_cycles,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FaultEvent":
        """Inverse of :meth:`to_dict`."""
        return cls(
            time=int(data["time"]),  # type: ignore[arg-type]
            task=str(data["task"]),
            job=int(data["job"]),  # type: ignore[arg-type]
            segment=int(data["segment"]),  # type: ignore[arg-type]
            kind=FaultKind(data["kind"]),
            attempts=int(data["attempts"]),  # type: ignore[arg-type]
            lost_cycles=int(data["lost_cycles"]),  # type: ignore[arg-type]
        )


def fault_events_to_json(events: List[FaultEvent]) -> str:
    """Serialize fault events to a versioned JSON document."""
    return json.dumps(
        {"schema": _FAULT_SCHEMA, "events": [e.to_dict() for e in events]},
        indent=2,
    )


def fault_events_from_json(text: str) -> List[FaultEvent]:
    """Inverse of :func:`fault_events_to_json` (schema-checked)."""
    data = json.loads(text)
    schema = data.get("schema")
    if schema != _FAULT_SCHEMA:
        raise ValueError(f"expected schema {_FAULT_SCHEMA!r}, got {schema!r}")
    return [FaultEvent.from_dict(e) for e in data["events"]]


class TransferOutcome(NamedTuple):
    """Result of resolving one transfer through the fault handler.

    ``cycles`` is the total DMA-busy time (attempts, CRC rechecks,
    watchdog waits, and backoff slots); ``ok`` says whether the data
    actually arrived.  When ``ok`` is False, ``kind`` names the terminal
    fault and the segment's weights were **not** staged.
    """

    cycles: int
    retries: int
    ok: bool
    kind: Optional[FaultKind] = None


def flash_layout(taskset: "TaskSet") -> Dict[Tuple[str, int], Tuple[int, int]]:
    """Deterministic flash placement of every segment's weights.

    Segments are packed back-to-back in task-name order (then segment
    order) — the layout a trivial linker script would produce.  The
    footprint of a segment is ``load_bytes`` when the planner recorded
    it, else ``load_cycles`` as a proxy (the spans only need to be
    proportional and deterministic).  Zero-footprint segments occupy an
    empty span and can never overlap a bad region.
    """
    layout: Dict[Tuple[str, int], Tuple[int, int]] = {}
    offset = 0
    for task in sorted(taskset, key=lambda t: t.name):
        for idx, seg in enumerate(task.segments):
            size = seg.load_bytes if seg.load_bytes > 0 else seg.load_cycles
            layout[(task.name, idx)] = (offset, offset + size)
            offset += size
    return layout


def flash_footprint(taskset: "TaskSet") -> int:
    """Total bytes (or cycle-proxy units) the layout occupies."""
    layout = flash_layout(taskset)
    return max((end for _, end in layout.values()), default=0)


def bad_region_span(
    taskset: "TaskSet", lo_frac: float, hi_frac: float
) -> BadRegion:
    """A :class:`BadRegion` covering ``[lo_frac, hi_frac)`` of the layout.

    Fractions are relative to the total :func:`flash_footprint`, so
    experiments can sweep "x % of flash went bad" independently of the
    absolute workload size.
    """
    if not 0.0 <= lo_frac <= hi_frac <= 1.0:
        raise ValueError(
            f"need 0 <= lo_frac <= hi_frac <= 1, got [{lo_frac}, {hi_frac})"
        )
    total = flash_footprint(taskset)
    return BadRegion(start=int(total * lo_frac), end=int(total * hi_frac))


class TransferFaultHandler:
    """Per-transfer fault-handler state machine.

    The simulator asks :meth:`resolve` for every DMA transfer it issues;
    the handler walks the retry loop (attempt → CRC check → backoff →
    retry) against the configured persistent and transient fault models
    and returns a :class:`TransferOutcome`.  The handler only ever
    *costs* cycles — it never makes a transfer finish early — and it
    never lies: an exhausted budget comes back ``ok=False``.
    """

    def __init__(
        self,
        config: EscalationConfig,
        layout: Optional[Dict[Tuple[str, int], Tuple[int, int]]] = None,
    ) -> None:
        self.config = config
        self.layout = layout or {}
        self._rng = random.Random(config.seed)
        self._job_faults: Dict[Tuple[str, int], int] = {}
        self.transfers = 0
        self.retries = 0
        self.faults = 0

    # ------------------------------------------------------------------
    # Fault-model predicates
    # ------------------------------------------------------------------
    def region_is_bad(self, task: str, segment: int) -> bool:
        """Whether ``(task, segment)``'s primary copy sits in a bad region."""
        span = self.layout.get((task, segment))
        if span is None:
            return False
        lo, hi = span
        return any(r.overlaps(lo, hi) for r in self.config.bad_regions)

    def _transient_allowed(self, task: str, job: int) -> bool:
        cap = self.config.max_faults_per_job
        if cap is None:
            return True
        return self._job_faults.get((task, job), 0) < cap

    def _charge_transient(self, task: str, job: int) -> None:
        key = (task, job)
        self._job_faults[key] = self._job_faults.get(key, 0) + 1

    # ------------------------------------------------------------------
    # The state machine
    # ------------------------------------------------------------------
    def resolve(
        self,
        time: int,
        task: str,
        job: int,
        segment: int,
        nominal: int,
        source: str = "primary",
        region_immune: bool = False,
    ) -> TransferOutcome:
        """Resolve one transfer of ``nominal`` cycles issued at ``time``.

        ``source`` is ``"primary"`` or ``"mirror"`` (a REMAPped re-fetch);
        mirror reads only hit bad regions when ``mirror_bad`` is set.
        ``region_immune`` marks tasks whose weights no longer live in
        external flash at all (e.g. a degraded variant small enough for
        internal memory) — persistent region faults then never apply.
        """
        if nominal == 0:
            return TransferOutcome(0, 0, True, None)
        cfg = self.config
        self.transfers += 1
        persistent_bad = False
        if not region_immune:
            if source == "mirror":
                persistent_bad = cfg.mirror_bad and self.region_is_bad(task, segment)
            else:
                persistent_bad = self.region_is_bad(task, segment)
        attempt_cycles = nominal
        if cfg.bus_degradation is not None:
            attempt_cycles = cfg.bus_degradation.attempt_cycles(time, nominal)
        total = 0
        last_kind: Optional[FaultKind] = None
        for attempt in range(cfg.max_retries + 1):
            locked = (
                cfg.lockup_prob > 0
                and self._transient_allowed(task, job)
                and self._rng.random() < cfg.lockup_prob
            )
            if locked:
                # The engine hangs; the watchdog cuts the attempt short.
                self._charge_transient(task, job)
                total += cfg.watchdog_cycles
                last_kind = FaultKind.WATCHDOG
                failed = True
            else:
                total += attempt_cycles
                if persistent_bad:
                    total += cfg.crc_overhead_cycles
                    last_kind = FaultKind.BAD_REGION
                    failed = True
                elif (
                    cfg.crc_fault_prob > 0
                    and self._transient_allowed(task, job)
                    and self._rng.random() < cfg.crc_fault_prob
                ):
                    self._charge_transient(task, job)
                    total += cfg.crc_overhead_cycles
                    last_kind = FaultKind.RETRY_EXHAUSTED
                    failed = True
                else:
                    failed = False
            if not failed:
                self.retries += attempt
                return TransferOutcome(total, attempt, True, None)
            if attempt < cfg.max_retries:
                total += cfg.backoff_slot_cycles * (2 ** attempt)
        self.retries += cfg.max_retries
        self.faults += 1
        kind = FaultKind.BAD_REGION if persistent_bad else last_kind
        assert kind is not None
        return TransferOutcome(total, cfg.max_retries, False, kind)


def fault_overhead_cycles(
    taskset: "TaskSet",
    config: EscalationConfig,
    recovery: Optional[object] = None,
) -> int:
    """An upper bound on the extra cycles one fault charges one transfer.

    The fault-aware analysis (:func:`repro.core.analysis.fault_aware_analysis`)
    inflates per-window DMA demand by ``k_faults * fault_overhead_cycles``;
    this helper derives a sound per-fault cost from the workload and the
    handler configuration: the worst single attempt (a full re-read of
    the largest segment at degraded bus speed plus a CRC recheck, or one
    watchdog timeout if lockups are possible) plus the largest backoff
    slot that can precede a retry.  When a recovery config is supplied,
    the re-fetch cost of a REMAP (mirror read of the largest segment) is
    folded in too, so the bound also covers remapped re-fetches.
    """
    max_load = max((t.max_segment_load for t in taskset), default=0)
    factor = 1.0
    if config.bus_degradation is not None:
        factor = config.bus_degradation.factor
    worst_read = math.ceil(max_load * factor)
    if recovery is not None:
        remap = getattr(recovery, "remap_cycles", None)
        if callable(remap):
            worst_read = max(worst_read, math.ceil(remap(max_load) * factor))
    attempt = worst_read + config.crc_overhead_cycles
    if config.lockup_prob > 0:
        attempt = max(attempt, config.watchdog_cycles)
    backoff = 0
    if config.max_retries > 0:
        backoff = config.backoff_slot_cycles * (2 ** (config.max_retries - 1))
    return attempt + backoff
