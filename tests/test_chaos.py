"""Tests for the chaos-injection harness (``repro.robust.chaos``)."""

from __future__ import annotations

import pytest

from repro.core import segcache
from repro.hw.presets import get_platform
from repro.online.durable import envelope_stream
from repro.online.runtime import OnlineRuntime
from repro.robust.chaos import (
    CHAOS_MODES,
    JOURNAL_DAMAGE_MODES,
    damage_journal,
    perturb_envelopes,
    run_matrix,
)
from repro.robust.metrics import chaos_summary
from repro.workload.arrivals import poisson_trace

PLATFORM = get_platform("f746-qspi")


@pytest.fixture(autouse=True)
def fresh_caches():
    segcache.clear_all()
    yield
    segcache.clear_all()


def _trace(duration_s=4.0, rate_hz=1.5, seed=7):
    return poisson_trace(duration_s, rate_hz, seed=seed)


class TestPerturbations:
    def test_same_multiset_of_canonical_requests(self):
        envelopes = envelope_stream(_trace())
        canonical = sorted(e.seq for e in envelopes)
        for mode in ("duplicate", "reorder", "drop", "skew"):
            perturbed = perturb_envelopes(envelopes, mode, seed=3, holdback=16)
            # Nothing is ever lost for good: every canonical sequence
            # number still appears at least once.
            assert sorted(set(e.seq for e in perturbed)) == canonical

    def test_displacement_bounded_by_half_holdback(self):
        envelopes = envelope_stream(_trace(duration_s=8.0))
        for mode in ("reorder", "drop", "duplicate"):
            perturbed = perturb_envelopes(envelopes, mode, seed=5, holdback=16)
            first_pos = {}
            for pos, env in enumerate(perturbed):
                first_pos.setdefault(env.seq, pos)
            for seq, pos in first_pos.items():
                # Everything needed before seq sits at most holdback
                # away, so the gate's buffer provably suffices.
                assert abs(pos - seq) <= 16

    def test_skew_touches_only_arrival_timestamps(self):
        envelopes = envelope_stream(_trace())
        skewed = perturb_envelopes(envelopes, "skew", seed=9)
        assert [e.seq for e in skewed] == [e.seq for e in envelopes]
        assert [e.request for e in skewed] == [e.request for e in envelopes]
        assert any(
            a.arrival_s != b.arrival_s for a, b in zip(skewed, envelopes)
        )

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown chaos mode"):
            perturb_envelopes([], "meteor-strike", seed=1)

    def test_journal_damage_modes_deliver_canonically(self):
        envelopes = envelope_stream(_trace())
        for mode in JOURNAL_DAMAGE_MODES:
            assert perturb_envelopes(envelopes, mode, seed=1) == list(envelopes)


class TestDamage:
    def test_truncate_shrinks_file(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text("header-line\n" + "x" * 400 + "\n")
        before = path.stat().st_size
        cut = damage_journal(str(path), "truncate-journal", seed=2)
        assert cut > 0
        assert path.stat().st_size == before - cut

    def test_corrupt_flips_one_tail_byte(self, tmp_path):
        path = tmp_path / "j.jsonl"
        content = "header-line\n" + "x" * 400 + "\n"
        path.write_text(content)
        assert damage_journal(str(path), "corrupt-journal", seed=2) == 1
        damaged = path.read_bytes()
        assert len(damaged) == len(content)
        assert damaged[:12] == b"header-line\n"  # header untouched
        assert damaged != content.encode()


class TestMatrix:
    def test_reduced_matrix_is_bit_identical(self, tmp_path):
        runtime = OnlineRuntime(PLATFORM)
        trace = _trace()
        report = run_matrix(
            runtime,
            trace,
            modes=CHAOS_MODES,
            crash_stride=5,
            checkpoint_interval=4,
            seed=3,
            journal_dir=str(tmp_path),
        )
        assert report.ok, [c.to_dict() for c in report.cells if not c.ok]
        assert report.n_decisions > 0
        # Suffix-only replay: undamaged-journal cells never replay more
        # than one checkpoint interval's worth of decisions.
        for cell in report.cells:
            if cell.mode not in JOURNAL_DAMAGE_MODES:
                assert cell.decisions_replayed <= 4
        # The delivery-perturbation columns actually exercised the gate.
        absorbed = sum(
            c.duplicates_absorbed
            for c in report.cells
            if c.mode in ("duplicate", "drop")
        )
        assert absorbed > 0
        # The matrix proves every invariant ran (CI gates on this).
        assert all(count > 0 for count in report.invariants.values())
        summary = chaos_summary(report)
        assert summary["identical_ratio"] == 1.0
        assert summary["cells"] == len(report.cells)

    def test_matrix_report_round_trips_to_dict(self, tmp_path):
        runtime = OnlineRuntime(PLATFORM)
        report = run_matrix(
            runtime,
            _trace(duration_s=2.0),
            modes=("none", "truncate-journal"),
            crash_stride=4,
            journal_dir=str(tmp_path),
        )
        payload = report.to_dict()
        assert payload["schema"] == "rtmdm-chaos/1"
        assert payload["ok"] is True
        assert len(payload["cells"]) == len(report.cells)

    def test_bad_arguments_rejected(self, tmp_path):
        runtime = OnlineRuntime(PLATFORM)
        with pytest.raises(ValueError, match="unknown chaos mode"):
            run_matrix(runtime, _trace(), modes=("bogus",))
        with pytest.raises(ValueError, match="crash_stride"):
            run_matrix(runtime, _trace(), crash_stride=0)


class TestFleetPerturbations:
    def _fleet_trace(self):
        from repro.eval.fleet import fleet_trace

        return fleet_trace(16, 1.0, 5.0, seed=3)

    def test_well_formed_and_deterministic(self):
        from repro.robust.chaos import FLEET_CHAOS_MODES, perturb_fleet_trace

        trace = self._fleet_trace()
        for mode in FLEET_CHAOS_MODES:
            first = perturb_fleet_trace(trace, mode, seed=9)
            again = perturb_fleet_trace(trace, mode, seed=9)
            assert first == again
            seqs = [r.seq for r in first.requests]
            assert seqs == list(range(len(first.requests)))
            times = [r.time_s for r in first.requests]
            assert times == sorted(times)
            # Every delivered request is a real one (duplicate mode may
            # deliver some twice; none are invented).
            originals = {(r.device, r.kind, r.task) for r in trace.requests}
            assert all(
                (r.device, r.kind, r.task) in originals
                for r in first.requests
            )

    def test_none_is_identity_and_duplicate_grows(self):
        from repro.robust.chaos import perturb_fleet_trace

        trace = self._fleet_trace()
        assert perturb_fleet_trace(trace, "none", seed=1) == trace
        doubled = perturb_fleet_trace(trace, "duplicate", seed=1)
        assert len(doubled.requests) > len(trace.requests)
        with pytest.raises(ValueError, match="fleet chaos mode"):
            perturb_fleet_trace(trace, "drop", seed=1)


class TestFleetInvariants:
    def test_counts_and_violations(self):
        from repro.eval.fleet import FleetConfig, FleetService, fleet_trace
        from repro.robust.chaos import FleetInvariantError, fleet_invariants

        trace = fleet_trace(16, 1.0, 5.0, seed=3)
        report = FleetService(config=FleetConfig(n_shards=2)).run(trace)
        counts = fleet_invariants(report)
        assert counts["decision-dense"] == report.requests
        assert counts["counts-consistent"] == 1
        # A doctored report trips the density check.
        report.decisions.pop()
        with pytest.raises(FleetInvariantError, match="decision-dense"):
            fleet_invariants(report)


class TestFleetMatrix:
    def test_quick_fleet_matrix_is_ok(self):
        from repro.robust.chaos import quick_fleet_matrix
        from repro.robust.metrics import fleet_chaos_summary

        report = quick_fleet_matrix(
            n_devices=12, duration_s=1.0, rate_hz=5.0,
            modes=("none", "reorder"), shard_counts=(1, 2),
            crash_fracs=(0.5,), checkpoint_interval=8,
        )
        assert report.ok
        assert len(report.cells) == 4
        assert all(cell.crashes > 0 for cell in report.cells)
        assert all(
            cell.recovered == cell.crashes for cell in report.cells
        )
        assert report.max_replayed <= 8
        payload = report.to_dict()
        assert payload["schema"] == "rtmdm-fleet-chaos/1"
        assert payload["identical_cells"] == len(report.cells)
        summary = fleet_chaos_summary(report)
        assert summary["identical_ratio"] == 1.0
        assert summary["invariant_checks"] > 0

    def test_unknown_mode_rejected(self):
        from repro.eval.fleet import fleet_trace
        from repro.robust.chaos import run_fleet_matrix

        trace = fleet_trace(8, 1.0, 4.0, seed=1)
        with pytest.raises(ValueError, match="fleet chaos mode"):
            run_fleet_matrix(trace, modes=("drop",))
