"""Property tests for the fault-aware schedulability analysis.

The soundness contract: a set admitted by
:func:`repro.core.analysis.fault_aware_analysis` with a retry budget of
``k`` keeps every deadline in any simulation where each job suffers at
most ``k`` transient transfer faults of bounded cost — and the per-task
WCRT bounds dominate every observed response.  The fault injection uses
``max_faults_per_job=k`` with ``max_retries=k`` so no transfer can
exhaust its budget (at most ``k`` failed attempts per job, ``k + 1``
attempts available per transfer): every fault is transient, exactly the
regime the analysis covers.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from conftest import make_task, random_taskset
from repro.core.analysis import analyze, fault_aware_analysis
from repro.hw.presets import get_platform
from repro.online.admission import AdmissionController
from repro.robust.escalation import EscalationConfig, fault_overhead_cycles
from repro.sched import rta
from repro.sched.policies import CpuPolicy
from repro.sched.simulator import SimConfig, simulate
from repro.sched.task import TaskSet, inflate_loads


@st.composite
def fault_scenarios(draw):
    n = draw(st.integers(1, 3))
    tasks = []
    for i in range(n):
        m = draw(st.integers(1, 3))
        pairs = [
            (draw(st.integers(0, 200)), draw(st.integers(100, 400)))
            for _ in range(m)
        ]
        demand = sum(l + c for l, c in pairs)
        period = demand * draw(st.integers(5, 10))
        deadline = draw(st.integers(max(1, (2 * period) // 3), period))
        buffers = draw(st.integers(1, 2))
        tasks.append(make_task(f"t{i}", pairs, period, deadline, i, buffers))
    k = draw(st.integers(1, 2))
    p = draw(st.floats(0.1, 0.6))
    seed = draw(st.integers(0, 10_000))
    return TaskSet.of(tasks), k, p, seed


@given(fault_scenarios())
@settings(max_examples=40, deadline=None)
def test_fault_aware_bound_dominates_faulty_simulation(scenario):
    ts, k, p, seed = scenario
    escalation = EscalationConfig(
        crc_fault_prob=p,
        max_retries=k,
        max_faults_per_job=k,
        crc_overhead_cycles=13,
        backoff_slot_cycles=5,
        seed=seed,
    )
    cost = fault_overhead_cycles(ts, escalation)
    fa = fault_aware_analysis(ts, k, cost)
    assume(fa.schedulable)
    horizon = 20 * max(t.period for t in ts)
    sim = simulate(
        ts,
        SimConfig(policy=CpuPolicy.FP_NP, horizon=horizon, escalation=escalation),
    )
    # The per-job cap guarantees no terminal exhaustion: all faults are
    # transient and within the analysed budget.
    assert sim.fault_events == []
    assert sim.quarantined == ()
    assert sim.no_misses, (
        f"fault-aware analysis admitted (k={k}, cost={cost}) but the "
        f"faulty run missed deadlines"
    )
    for task in ts:
        observed = sim.max_response(task.name)
        bound = fa.wcrt[task.name]
        if observed is not None:
            assert bound is not None and observed <= bound, (
                f"task {task.name}: observed {observed} > bound {bound} "
                f"under k={k} faults/job"
            )


@given(fault_scenarios())
@settings(max_examples=30, deadline=None)
def test_fault_aware_admission_never_optimistic_vs_nominal(scenario):
    """Tolerating faults can only shrink the admitted region: a set the
    fault-aware analysis admits is also nominally admitted."""
    ts, k, _, _ = scenario
    cost = fault_overhead_cycles(
        ts, EscalationConfig(max_retries=k, crc_overhead_cycles=13)
    )
    fa = fault_aware_analysis(ts, k, cost)
    assume(fa.schedulable)
    assert analyze(ts, "rtmdm").schedulable


@pytest.mark.parametrize("seed", range(12))
def test_fault_aware_wcrt_monotone_in_budget(seed):
    """k = 0 reduces to the plain bound; growing k never shrinks it."""
    rng = random.Random(seed)
    taskset = random_taskset(rng, n_tasks=3, util_target=0.4)
    tasks = [
        rta.RtaTask(
            name=t.name,
            exec_cycles=t.total_compute + t.total_load,
            period=t.period,
            deadline=t.deadline,
            priority=t.priority,
        )
        for t in taskset
    ]
    for target in tasks:
        plain = rta.fp_nonpreemptive_wcrt(tasks, target)
        previous = rta.fault_aware_wcrt(tasks, target, 0, 500)
        assert previous == plain
        for k in (1, 2, 3):
            bound = rta.fault_aware_wcrt(tasks, target, k, 500)
            if previous is None:
                assert bound is None or True  # already diverged
                break
            if bound is None:
                break  # inflated demand diverged: strictly worse, fine
            assert bound >= previous
            previous = bound


def test_fault_aware_wcrt_validates_inputs():
    task = rta.RtaTask(name="a", exec_cycles=10, period=100, deadline=100,
                       priority=0)
    with pytest.raises(ValueError):
        rta.fault_aware_wcrt([task], task, -1, 10)
    with pytest.raises(ValueError):
        rta.fault_aware_wcrt([task], task, 1, -10)


@pytest.mark.parametrize("seed", range(12))
def test_inflate_loads_charges_first_and_largest_segments(seed):
    """The budget lands on the serial first load (latency term) and on
    the largest load (blocking term) — once when they coincide."""
    rng = random.Random(100 + seed)
    taskset = random_taskset(rng, n_tasks=3, util_target=0.4)
    inflated = inflate_loads(taskset, 2, 150)
    for before, after in zip(taskset, inflated):
        if before.total_load == 0:
            assert after.segments == before.segments
            continue
        loads = [s.load_cycles for s in before.segments]
        largest = loads.index(max(loads))
        targets = {0, largest}
        assert after.total_load == before.total_load + 300 * len(targets)
        for i, (b, a) in enumerate(zip(before.segments, after.segments)):
            expected = b.load_cycles + (300 if i in targets else 0)
            assert a.load_cycles == expected
            assert a.compute_cycles == b.compute_cycles
        # The latency and blocking analysis terms both absorb >= the
        # full budget.
        assert max(s.load_cycles for s in after.segments) >= max(loads) + 300
        assert after.segments[0].load_cycles >= loads[0] + 300


# ----------------------------------------------------------------------
# Admission screen monotonicity
# ----------------------------------------------------------------------
PLATFORM = get_platform("f746-qspi")


@pytest.mark.parametrize("seed", range(10))
def test_screen_with_retry_budget_never_less_pessimistic(seed):
    """If the fast screen passes WITH a fault budget it must also pass
    without one — the budget only ever adds demand and blocking."""
    rng = random.Random(3000 + seed)
    taskset = random_taskset(rng, n_tasks=3, util_target=0.35)
    tasks = list(taskset)
    plain = AdmissionController(PLATFORM)
    budgeted = AdmissionController(
        PLATFORM, retry_budget=2, fault_overhead_cycles=400
    )
    if budgeted._screen(tasks):
        assert plain._screen(tasks)


@pytest.mark.parametrize("seed", range(10))
def test_full_admission_with_budget_never_less_pessimistic(seed):
    rng = random.Random(4000 + seed)
    taskset = random_taskset(rng, n_tasks=3, util_target=0.35)
    tasks = list(taskset)
    plain = AdmissionController(PLATFORM)
    budgeted = AdmissionController(
        PLATFORM, retry_budget=2, fault_overhead_cycles=400
    )
    ok_budgeted, _ = budgeted._schedulable(tasks)
    ok_plain, _ = plain._schedulable(tasks)
    if ok_budgeted:
        assert ok_plain
