"""Real-time scheduling substrate: task model, simulator, and analyses.

This package is independent of DNNs: it schedules *segmented periodic
tasks* on a two-resource platform (one CPU + one DMA engine) and provides
the classic uniprocessor response-time machinery the RT-MDM analyses are
built from.

* :mod:`repro.sched.task` — segments, periodic tasks, jobs, task sets.
* :mod:`repro.sched.policies` — CPU scheduling policies (FP/EDF ×
  preemptive/non-preemptive at segment granularity).
* :mod:`repro.sched.simulator` — deterministic discrete-event simulator.
* :mod:`repro.sched.trace` — execution traces and ASCII Gantt charts.
* :mod:`repro.sched.rta` — classic response-time analysis building blocks.
"""

from repro.sched.policies import CpuPolicy
from repro.sched.simulator import SimConfig, SimResult, Simulator, simulate
from repro.sched.svg import trace_to_svg, write_svg
from repro.sched.task import PeriodicTask, Segment, TaskSet, with_dispatch_overhead
from repro.sched.trace import Trace, TraceEvent

__all__ = [
    "Segment",
    "PeriodicTask",
    "TaskSet",
    "CpuPolicy",
    "Simulator",
    "SimConfig",
    "SimResult",
    "simulate",
    "Trace",
    "TraceEvent",
    "trace_to_svg",
    "write_svg",
    "with_dispatch_overhead",
]
