"""Layer timing model: CMSIS-NN-style cycle estimation.

Real TinyML runtimes execute each layer with a hand-optimized kernel whose
cost is dominated by multiply-accumulate throughput, with a memory-bound
floor for layers that touch many bytes per MAC.  This module captures that
with a small analytical model:

``compute = per_layer_overhead + macs * cycles_per_mac(kind) * quant_factor``

``floor   = bytes_touched * sram_cycles_per_byte``

``cycles  = max(compute, floor)``

For **XIP** execution (weights fetched from external memory while
computing, no staging) the weight-fetch cost over the slow external bus is
added on top, which is what makes XIP unattractive for weight-heavy layers.

The default coefficients are representative of CMSIS-NN int8 kernels on a
Cortex-M7; they are deliberately round numbers, since the reproduction
targets the *shape* of results, not absolute nanoseconds (see DESIGN.md).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping

from repro.hw.mcu import McuSpec
from repro.hw.memory import ExternalMemory

#: Cycles per MAC for int8 kernels with DSP extensions, by layer kind.
#: Depthwise convolutions have poor register reuse, hence the higher cost.
DEFAULT_CYCLES_PER_MAC: Mapping[str, float] = {
    "conv2d": 2.2,
    "dwconv2d": 4.5,
    "dense": 1.8,
}

#: Cycles per output element for element-dominated layers.
DEFAULT_CYCLES_PER_ELEMENT: Mapping[str, float] = {
    "pool": 1.5,
    "add": 0.8,
    "softmax": 20.0,
    "flatten": 0.0,
}


@dataclass(frozen=True)
class LayerCost:
    """Cost breakdown of one layer execution.

    Attributes:
        compute_cycles: CPU cycles for the kernel itself (weights resident
            in SRAM).
        xip_extra_cycles: Additional cycles when weights are fetched over
            the external bus (XIP mode); 0 when weights are staged.
    """

    compute_cycles: int
    xip_extra_cycles: int = 0

    @property
    def xip_cycles(self) -> int:
        """Total cycles in XIP mode."""
        return self.compute_cycles + self.xip_extra_cycles


@dataclass(frozen=True)
class TimingModel:
    """Analytical layer timing model for one MCU class.

    Attributes:
        cycles_per_mac: Per-kind MAC cost (int8, DSP extensions).
        cycles_per_element: Per-kind element cost for non-MAC layers.
        per_layer_overhead_cycles: Fixed kernel invocation overhead
            (argument marshalling, im2col setup, ...).
        sram_cycles_per_byte: Memory-bound floor coefficient: minimum
            cycles per byte moved through SRAM by the kernel.
        no_dsp_factor: Multiplier applied when the MCU lacks DSP
            extensions.
        float32_factor: Multiplier for float32 (vs int8) execution.
    """

    cycles_per_mac: Mapping[str, float] = field(
        default_factory=lambda: dict(DEFAULT_CYCLES_PER_MAC)
    )
    cycles_per_element: Mapping[str, float] = field(
        default_factory=lambda: dict(DEFAULT_CYCLES_PER_ELEMENT)
    )
    per_layer_overhead_cycles: int = 2000
    sram_cycles_per_byte: float = 0.30
    no_dsp_factor: float = 4.0
    float32_factor: float = 3.0

    def _kind_cycles(self, layer, bytes_per_value: float) -> float:
        """Raw arithmetic cycles for a layer, before overhead and floors."""
        kind = layer.kind
        if kind in self.cycles_per_mac:
            quant_factor = self.float32_factor if bytes_per_value >= 4 else 1.0
            return layer.macs * self.cycles_per_mac[kind] * quant_factor
        if kind in self.cycles_per_element:
            return layer.output_elements * self.cycles_per_element[kind]
        raise KeyError(f"no timing coefficient for layer kind {kind!r}")

    def compute_cycles(self, layer, mcu: McuSpec, bytes_per_value: float = 1.0) -> int:
        """CPU cycles to execute ``layer`` with all operands in SRAM.

        Args:
            layer: Any object exposing ``kind``, ``macs``,
                ``output_elements``, ``param_count`` and activation byte
                counts (see :class:`repro.dnn.layers.Layer`).
            mcu: Target MCU (DSP availability affects int8 kernels).
            bytes_per_value: Weight/activation element width from the
                quantization scheme (1 for int8, 4 for float32).
        """
        arith = self._kind_cycles(layer, bytes_per_value)
        if not mcu.dsp_extensions and layer.kind in self.cycles_per_mac:
            arith *= self.no_dsp_factor
        bytes_touched = (
            layer.param_count * bytes_per_value
            + (layer.input_elements + layer.output_elements) * bytes_per_value
        )
        floor = bytes_touched * self.sram_cycles_per_byte
        return self.per_layer_overhead_cycles + int(math.ceil(max(arith, floor)))

    def layer_cost(
        self,
        layer,
        mcu: McuSpec,
        memory: ExternalMemory,
        bytes_per_value: float = 1.0,
        xip: bool = False,
    ) -> LayerCost:
        """Full cost of one layer, optionally in XIP mode.

        In XIP mode every weight byte is fetched over the external bus at
        the (scatter-degraded) XIP rate; this cost is serial with compute
        because Cortex-M parts in this class have no weight cache.
        """
        compute = self.compute_cycles(layer, mcu, bytes_per_value)
        xip_extra = 0
        if xip and layer.param_count > 0:
            param_bytes = int(math.ceil(layer.param_count * bytes_per_value))
            rate = memory.xip_bytes_per_cycle(mcu)
            xip_extra = int(math.ceil(param_bytes / rate))
        return LayerCost(compute_cycles=compute, xip_extra_cycles=xip_extra)
