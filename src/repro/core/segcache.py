"""Bounded memoization for the planning pipeline (the "plan cache").

The evaluation sweeps re-run the exact same expensive planning work over
and over: paired draws evaluate the *same* models at every sweep point,
and the generator's derived knobs (staging chunk size, non-preemptive
compute cap, per-task SRAM budgets) are continuous functions of the sweep
variable, so naive exact-key caching would almost never hit.  This module
therefore does two things:

1. **Canonicalization** — planner inputs are *quantized down* to a coarse
   deterministic ladder before planning (and before key construction), so
   nearby sweep points collapse onto the same key.  Rounding *down* is the
   conservative direction for every knob:

   * a smaller staging chunk / compute cap yields *finer* granularity than
     requested (never a longer non-preemptive section);
   * a smaller staging-slot byte budget uses *less* SRAM than granted.

   Quantization is applied on the cold path too, so a cache hit returns
   bit-identical results to a cache miss (and to a run with the cache
   disabled) by construction.

2. **Bounded LRU caches with hit/miss counters** — one per planning stage
   (zoo model build, granularity refinement, segmentation search,
   schedulability analysis).  Counters are cheap to snapshot/diff so
   parallel workers can report per-unit deltas that merge into exact
   totals.

Key soundness notes:

* The segmentation-search key uses a *planner* platform fingerprint that
  deliberately excludes SRAM/flash capacity: segment timing
  (``compute_cycles``/``load_cycles``) depends only on the clock, DSP/FPU
  flags, timing coefficients, external-memory bandwidth/setup and DMA
  programming overhead.  SRAM capacity enters only through the byte
  budget, which is part of the key — so an SRAM sweep
  (``platform.with_sram_bytes``) reuses search results across points.
* Cached values store the **boundaries plus the materialized segment
  tuple** (both fully determined by the key); the ``SegmentedModel``
  itself is rebuilt with the *caller's* platform object on every hit.
* Budgets at or above the model's total weight bytes are equivalent
  (every contiguous partition is byte-feasible), so the slot budget is
  clamped to ``total_param_bytes`` before quantization.  Likewise a
  compute cap at or above the model's total compute never binds and is
  canonicalized to "no cap".
* ``SegmentationError`` outcomes are cached too (negative caching): the
  planner is deterministic, so an infeasible key stays infeasible.

Environment knobs: ``REPRO_PLAN_CACHE=0`` disables all caches;
``REPRO_PLAN_CACHE_SIZE`` overrides the per-cache entry bound;
``REPRO_PLAN_STORE=<dir>`` adds the persistent on-disk tier below the
search LRU (see :mod:`repro.core.planstore`).
"""

from __future__ import annotations

import dataclasses
import enum
import os
import threading
from collections import OrderedDict
from typing import Any, Callable, Dict, Iterable, Mapping, Optional, Tuple

from repro.core import pipeline as _pipeline
from repro.core import planstore
from repro.core.analysis import AnalysisResult, analyze
from repro.core.pipeline import SegmentedModel
from repro.core.segmentation import SegmentationError, search_segmentation
from repro.dnn.models import Model, refine_model
from repro.dnn.quantization import Quantization
from repro.dnn.zoo import build_model
from repro.hw.platform import Platform
from repro.sched.task import TaskSet

__all__ = [
    "PlanCache",
    "cached_analyze",
    "cached_build_model",
    "cached_refine_model",
    "cached_search_segmentation",
    "cached_segment_transform",
    "cached_xip_segments",
    "cache_note",
    "clear_all",
    "configure",
    "counters",
    "delta_since",
    "freeze",
    "merge_deltas",
    "planner_platform_fingerprint",
    "pow2_floor",
    "quarter_pow2_floor",
    "set_enabled",
    "snapshot",
    "stats",
]

_DEFAULT_MAXSIZE = 4096


def _env_enabled() -> bool:
    return os.environ.get("REPRO_PLAN_CACHE", "1") != "0"


def _env_maxsize() -> int:
    try:
        return max(1, int(os.environ.get("REPRO_PLAN_CACHE_SIZE", _DEFAULT_MAXSIZE)))
    except ValueError:
        return _DEFAULT_MAXSIZE


# ----------------------------------------------------------------------
# Deterministic deep fingerprints
# ----------------------------------------------------------------------
def freeze(obj: Any) -> Any:
    """Recursively convert ``obj`` into a hashable, deterministic key part.

    Handles the (frozen) dataclasses used throughout the library even when
    they hold unhashable ``Mapping`` fields (e.g. ``TimingModel``), plus
    enums, sequences and mappings.  The result is stable across processes
    (no reliance on ``id``/``hash`` randomization).
    """
    if obj is None or isinstance(obj, (bool, int, float, str, bytes)):
        return obj
    if isinstance(obj, enum.Enum):
        return (type(obj).__name__, obj.name)
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return (
            type(obj).__name__,
            tuple(
                (f.name, freeze(getattr(obj, f.name)))
                for f in dataclasses.fields(obj)
            ),
        )
    if isinstance(obj, Mapping):
        return ("map", tuple(sorted((freeze(k), freeze(v)) for k, v in obj.items())))
    if isinstance(obj, (list, tuple)):
        return tuple(freeze(item) for item in obj)
    if isinstance(obj, (set, frozenset)):
        return ("set", tuple(sorted(freeze(item) for item in obj)))
    raise TypeError(f"cannot fingerprint {type(obj).__name__}: {obj!r}")


# ----------------------------------------------------------------------
# Quantization ladders (always round DOWN: conservative direction)
# ----------------------------------------------------------------------
def pow2_floor(value: int) -> int:
    """Largest power of two <= ``value`` (values < 1 pass through)."""
    if value < 1:
        return value
    return 1 << (value.bit_length() - 1)


def quarter_pow2_floor(value: int) -> int:
    """Largest ``{1, 1.25, 1.5, 1.75} * 2**p`` value <= ``value``.

    A finer ladder (max 20% loss) for SRAM byte budgets, where rounding
    down wastes real capacity; the coarse :func:`pow2_floor` ladder is for
    granularity caps, where rounding down merely over-fragments a little.
    """
    if value < 4:
        return value
    base = 1 << (value.bit_length() - 1)
    step = base >> 2
    return base + ((value - base) // step) * step


# ----------------------------------------------------------------------
# Bounded LRU cache with counters
# ----------------------------------------------------------------------
class PlanCache:
    """A bounded LRU map with hit/miss counters (thread-safe)."""

    def __init__(self, name: str, maxsize: Optional[int] = None) -> None:
        self.name = name
        self._maxsize = maxsize if maxsize is not None else _env_maxsize()
        self._data: "OrderedDict[Any, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    @property
    def maxsize(self) -> int:
        return self._maxsize

    def __len__(self) -> int:
        return len(self._data)

    def get(self, key: Any) -> Tuple[bool, Any]:
        """Return ``(found, value)``; a hit refreshes LRU recency."""
        with self._lock:
            try:
                value = self._data[key]
            except KeyError:
                self.misses += 1
                return False, None
            self._data.move_to_end(key)
            self.hits += 1
            return True, value

    def put(self, key: Any, value: Any) -> None:
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self._maxsize:
                self._data.popitem(last=False)

    def add_counts(self, hits: int, misses: int) -> None:
        """Fold externally-observed traffic (a worker's delta) into the
        counters without touching the stored entries."""
        with self._lock:
            self.hits += hits
            self.misses += misses

    def clear(self) -> None:
        with self._lock:
            self._data.clear()
            self.hits = 0
            self.misses = 0

    def resize(self, maxsize: int) -> None:
        with self._lock:
            self._maxsize = max(1, maxsize)
            while len(self._data) > self._maxsize:
                self._data.popitem(last=False)


#: Public caches, by planning stage.  "refine" + "search" together form
#: the *segmentation cache* reported in experiment notes.
CACHES: Dict[str, PlanCache] = {
    "zoo": PlanCache("zoo"),
    "refine": PlanCache("refine"),
    "search": PlanCache("search"),
    "analysis": PlanCache("analysis"),
}

#: Internal per-(model, platform) aggregate memo (not part of the public
#: counters; it only amortizes prefix-sum style aggregates).
_costs_memo = PlanCache("_costs")

#: Internal memo for derived XIP-baseline segment tuples (immutable, so
#: sharing across tasksets is safe); also outside the public counters —
#: the experiment notes report *segmentation* cache traffic.
_xip_memo = PlanCache("_xip")

#: Internal memo for baseline segment-tuple transforms, keyed by the
#: *identity* of the source tuple (the plan cache hands the same shared
#: tuple to every hit, so admission sweeps transform it thousands of
#: times).  Entries hold a strong reference to the source tuple.
_transform_memo = PlanCache("_transform")

_enabled = _env_enabled()


def set_enabled(flag: bool) -> None:
    """Enable/disable all plan caches (counters keep accumulating)."""
    global _enabled
    _enabled = bool(flag)


def is_enabled() -> bool:
    return _enabled


# The pipeline module's id-keyed latency memo obeys the same master
# switch; bound late because ``pipeline`` cannot import this module.
_pipeline._memo_enabled = is_enabled


def configure(enabled: Optional[bool] = None, maxsize: Optional[int] = None) -> None:
    """Adjust cache behaviour at runtime (used by tests and the CLI)."""
    if enabled is not None:
        set_enabled(enabled)
    if maxsize is not None:
        for cache in CACHES.values():
            cache.resize(maxsize)
        _costs_memo.resize(maxsize)
        _xip_memo.resize(maxsize)
        _transform_memo.resize(maxsize)


def clear_all() -> None:
    """Drop every cached entry and reset all counters."""
    for cache in CACHES.values():
        cache.clear()
    _costs_memo.clear()
    _xip_memo.clear()
    _transform_memo.clear()
    _pipeline._latency_memo.clear()


def snapshot() -> Dict[str, Tuple[int, ...]]:
    """Current counter values: ``(hits, misses)`` per plan cache, plus
    the ``"sim.fold"`` (runs, folds, cycles_skipped, jobs_skipped),
    ``"sim.soa"`` (runs, events, stand_downs), ``"rta.fixpoint"``
    (exact_hits, misses, warm_hits) and ``"fleet.resilience"``
    (degraded_admits, timeout_retries, recovered, crashes)
    pseudo-entries — one protocol carries every
    performance counter through the parallel runner's worker deltas.
    """
    from repro.robust import recovery
    from repro.sched import rta, simcore, simulator

    snap: Dict[str, Tuple[int, ...]] = {
        name: (cache.hits, cache.misses) for name, cache in CACHES.items()
    }
    snap["sim.fold"] = simulator.fold_snapshot()
    snap["sim.soa"] = simcore.soa_snapshot()
    snap["rta.fixpoint"] = rta.fixpoint_snapshot()
    snap["planstore"] = planstore.counters_snapshot()
    snap["fleet.resilience"] = recovery.resilience_snapshot()
    return snap


def delta_since(before: Mapping[str, Tuple[int, ...]]) -> Dict[str, Tuple[int, ...]]:
    """Counter increments since a :func:`snapshot`."""
    now = snapshot()
    out: Dict[str, Tuple[int, ...]] = {}
    for name, vals in now.items():
        prev = before.get(name, ())
        out[name] = tuple(
            v - (prev[i] if i < len(prev) else 0) for i, v in enumerate(vals)
        )
    return out


def absorb(delta: Mapping[str, Tuple[int, ...]]) -> None:
    """Fold a worker process's counter delta into this process's totals.

    Serial runs never call this — inline units already bumped the global
    counters.  :func:`repro.eval.parallel.run_units` applies it to
    results coming back from a process pool, so :func:`snapshot` /
    :func:`delta_since` in the parent stay exact at any worker count.
    """
    for name, vals in delta.items():
        if name == "sim.fold":
            from repro.sched import simulator

            simulator.fold_absorb(vals)
        elif name == "sim.soa":
            from repro.sched import simcore

            simcore.soa_absorb(vals)
        elif name == "rta.fixpoint":
            from repro.sched import rta

            rta.fixpoint_absorb(vals)
        elif name == "planstore":
            planstore.counters_absorb(vals)
        elif name == "fleet.resilience":
            from repro.robust import recovery

            recovery.resilience_absorb(vals)
        else:
            cache = CACHES.get(name)
            if cache is not None:
                cache.add_counts(vals[0], vals[1])


def merge_deltas(
    deltas: Iterable[Mapping[str, Tuple[int, ...]]]
) -> Dict[str, Tuple[int, ...]]:
    """Sum per-unit counter deltas (order-independent)."""
    total: Dict[str, Tuple[int, ...]] = {}
    for delta in deltas:
        for name, vals in delta.items():
            prev = total.get(name, ())
            width = max(len(prev), len(vals))
            total[name] = tuple(
                (prev[i] if i < len(prev) else 0)
                + (vals[i] if i < len(vals) else 0)
                for i in range(width)
            )
    return total


def counters(names: Tuple[str, ...] = ("refine", "search")) -> Tuple[int, int]:
    """Combined ``(hits, misses)`` over the named caches."""
    hits = sum(CACHES[n].hits for n in names)
    misses = sum(CACHES[n].misses for n in names)
    return hits, misses


def stats() -> Dict[str, Dict[str, int]]:
    """Full per-cache statistics (for BENCH_suite.json and --profile)."""
    from repro.robust import recovery
    from repro.sched import rta, simcore, simulator

    out = {
        name: {
            "hits": cache.hits,
            "misses": cache.misses,
            "entries": len(cache),
            "maxsize": cache.maxsize,
        }
        for name, cache in CACHES.items()
    }
    out["sim.fold"] = simulator.fold_counters()
    out["sim.soa"] = simcore.soa_counters()
    out["rta.fixpoint"] = rta.fixpoint_counters()
    out["planstore"] = planstore.counters_dict()
    out["fleet.resilience"] = recovery.resilience_counters()
    return out


def cache_note(totals: Mapping[str, Tuple[int, int]]) -> str:
    """One-line experiment note summarizing segmentation-cache traffic."""
    if not _enabled:
        return "plan cache: disabled"
    seg_h = sum(totals.get(n, (0, 0))[0] for n in ("refine", "search"))
    seg_m = sum(totals.get(n, (0, 0))[1] for n in ("refine", "search"))
    ana_h, ana_m = totals.get("analysis", (0, 0))
    seg_total = seg_h + seg_m
    ana_total = ana_h + ana_m
    seg_rate = (100.0 * seg_h / seg_total) if seg_total else 0.0
    ana_rate = (100.0 * ana_h / ana_total) if ana_total else 0.0
    return (
        f"plan cache: segmentation {seg_h}/{seg_total} hits ({seg_rate:.1f}%), "
        f"analysis {ana_h}/{ana_total} hits ({ana_rate:.1f}%)"
    )


# ----------------------------------------------------------------------
# Platform fingerprints (planner-relevant projections)
# ----------------------------------------------------------------------
def _compute_fingerprint(platform: Platform) -> Tuple[Any, ...]:
    """The platform projection layer *compute* timing depends on.

    ``TimingModel.compute_cycles`` reads only the timing coefficients and
    the MCU's DSP/FPU capability flags — never SRAM or flash capacity.
    """
    return (
        freeze(platform.timing),
        platform.mcu.dsp_extensions,
        platform.mcu.has_fpu,
    )


def _load_fingerprint(platform: Platform) -> Tuple[Any, ...]:
    """The platform projection DMA *load* timing depends on."""
    return (
        platform.mcu.clock_hz,
        platform.memory.read_bandwidth_bps,
        platform.memory.setup_latency_s,
        platform.memory.xip_efficiency,
        platform.dma.program_overhead_s,
    )


def planner_platform_fingerprint(platform: Platform) -> Tuple[Any, ...]:
    """Everything the segmentation planner reads from the platform.

    Deliberately excludes SRAM/flash capacity and display names: capacity
    enters the planner only through the explicit byte budget (a separate
    key part), so sweep variants built with ``with_sram_bytes`` share
    cache entries.  Memoized by platform identity (sweeps reuse a handful
    of platform objects across thousands of key constructions).
    """
    return _platform_fingerprint(platform)


# ----------------------------------------------------------------------
# Object fingerprints (id-stable memos to avoid repeated deep freezes)
# ----------------------------------------------------------------------
_FP_MEMO_MAX = 512
_fp_lock = threading.Lock()


class _IdentityMemo:
    """Bounded ``id(obj) -> fingerprint`` memo with strong references.

    Keys are fingerprinted objects the sweeps reuse by identity (models,
    platforms, quantizations); holding a strong reference to each entry's
    object means an ``id`` can never be reused while its entry is alive.
    """

    def __init__(self, compute: "Callable[[Any], Any]") -> None:
        self._compute = compute
        self._data: "OrderedDict[int, Tuple[Any, Any]]" = OrderedDict()

    def __call__(self, obj: Any) -> Any:
        key = id(obj)
        with _fp_lock:
            entry = self._data.get(key)
            if entry is not None and entry[0] is obj:
                self._data.move_to_end(key)
                return entry[1]
        fp = self._compute(obj)
        with _fp_lock:
            self._data[key] = (obj, fp)
            self._data.move_to_end(key)
            while len(self._data) > _FP_MEMO_MAX:
                self._data.popitem(last=False)
        return fp


_model_fingerprint: "Callable[[Model], Any]" = _IdentityMemo(freeze)
_quant_fingerprint: "Callable[[Quantization], Any]" = _IdentityMemo(freeze)
_platform_fingerprint: "Callable[[Platform], Any]" = _IdentityMemo(
    lambda platform: (_compute_fingerprint(platform), _load_fingerprint(platform))
)


def cached_xip_segments(
    name: str,
    model: Model,
    platform: Platform,
    quant: Quantization,
    build: "Callable[[], Any]",
) -> Any:
    """Memoize the XIP baseline's per-layer segment tuple.

    Every admission test re-derives the same per-layer XIP cycle costs
    for the same refined model; the resulting ``Segment`` tuple is
    immutable, so entries are shared across tasksets.  Keyed on the task
    name (embedded in segment names) plus everything the cost model
    reads: the model, the planner platform projection and the
    quantization.
    """
    if not _enabled:
        return build()
    key = (
        name,
        _model_fingerprint(model),
        planner_platform_fingerprint(platform),
        _quant_fingerprint(quant),
    )
    found, value = _xip_memo.get(key)
    if found:
        return value
    value = build()
    _xip_memo.put(key, value)
    return value


def cached_segment_transform(
    tag: str,
    segments: Any,
    extra: Any,
    build: "Callable[[], Any]",
) -> Any:
    """Memoize a pure transform of an (immutable, shared) segment tuple.

    The baseline derivations (busy-wait folding, whole-job collapsing)
    are functions of the source segment tuple alone plus whatever
    ``extra`` key parts the caller's output embeds; keyed by the tuple's
    identity, with the tuple itself stored in the entry so the id stays
    valid.  Only tuples are memoized — anything else falls through.
    """
    if not _enabled or type(segments) is not tuple:
        return build()
    key = (tag, id(segments), extra)
    found, entry = _transform_memo.get(key)
    if found and entry[0] is segments:
        return entry[1]
    value = build()
    _transform_memo.put(key, (segments, value))
    return value


# ----------------------------------------------------------------------
# Cached planning stages
# ----------------------------------------------------------------------
def cached_build_model(name: str) -> Model:
    """Zoo lookup with memoization (builders are pure)."""
    if not _enabled:
        return build_model(name)
    cache = CACHES["zoo"]
    found, model = cache.get(name)
    if found:
        return model
    model = build_model(name)
    cache.put(name, model)
    return model


def _refine_parts(
    model: Model, quant: Quantization, max_chunk_bytes: int, max_chunk_macs: int
) -> Tuple[int, ...]:
    """Per-layer split counts — the minimal sufficient refinement key.

    Mirrors the decision logic of :func:`repro.dnn.models.refine_model`:
    the refined model is fully determined by ``(model, parts vector)``, so
    distinct ``(chunk, macs_cap)`` pairs that induce the same splits share
    one cache entry.
    """
    from repro.dnn.layers import SPLITTABLE_KINDS

    parts = []
    for layer in model.layers:
        p = 1
        if layer.kind in SPLITTABLE_KINDS:
            p = -(-layer.param_bytes(quant) // max_chunk_bytes)
            if max_chunk_macs:
                p = max(p, -(-layer.macs // max_chunk_macs))
        parts.append(p)
    return tuple(parts)


def cached_refine_model(
    model: Model,
    quant: Quantization,
    max_chunk_bytes: int,
    max_chunk_macs: int = 0,
) -> Model:
    """Granularity refinement with quantized knobs and memoization.

    Both knobs are floored to the power-of-two ladder (conservative: a
    smaller chunk/cap only makes granularity finer), then the per-layer
    parts vector is used as the cache key.  Quantization happens before
    planning on cold *and* warm paths, so results are path-independent.
    """
    if max_chunk_bytes <= 0:
        raise ValueError(f"max_chunk_bytes must be positive, got {max_chunk_bytes}")
    if max_chunk_macs < 0:
        raise ValueError(f"max_chunk_macs must be non-negative, got {max_chunk_macs}")
    chunk_q = pow2_floor(max_chunk_bytes)
    macs_q = pow2_floor(max_chunk_macs) if max_chunk_macs else 0
    if not _enabled:
        return refine_model(model, quant, chunk_q, macs_q)
    cache = CACHES["refine"]
    key = (
        _model_fingerprint(model),
        _quant_fingerprint(quant),
        _refine_parts(model, quant, chunk_q, macs_q),
    )
    found, refined = cache.get(key)
    if found:
        return refined
    refined = refine_model(model, quant, chunk_q, macs_q)
    cache.put(key, refined)
    return refined


def _model_costs(
    model: Model, platform: Platform, quant: Quantization
) -> Tuple[int, int, int, int, int]:
    """``(max_layer_w, total_w, act_bytes, max_layer_c, total_c)``.

    Memoized per (model, compute fingerprint, quant); these aggregates
    are exactly what key canonicalization needs and what the planner
    recomputes on every construction.
    """
    if _enabled:
        key = (
            _model_fingerprint(model),
            _compute_fingerprint(platform),
            _quant_fingerprint(quant),
        )
        found, value = _costs_memo.get(key)
        if found:
            return value
    weights = [layer.param_bytes(quant) for layer in model.layers]
    computes = [
        platform.compute_cycles(layer, quant.weight_bytes) for layer in model.layers
    ]
    value = (
        max(weights),
        sum(weights),
        model.peak_activation_bytes(quant),
        max(computes),
        sum(computes),
    )
    if _enabled:
        _costs_memo.put(key, value)
    return value


def _unfit_message(
    model: Model, max_w: int, slot_cap: int, sram_budget: int,
    act: int, buffers: int,
) -> str:
    """Byte-infeasibility message, rendered from the *caller's* inputs."""
    return (
        f"model {model.name!r} cannot fit: largest layer needs {max_w} B "
        f"per slot but only {max(slot_cap, 0)} B available "
        f"(budget {sram_budget} B, activations {act} B, {buffers} buffers)"
    )


def cached_search_segmentation(
    model: Model,
    platform: Platform,
    sram_budget: int,
    quant: Quantization,
    buffers: int = 2,
    max_segment_compute: Optional[int] = None,
) -> SegmentedModel:
    """Segmentation search with canonicalized keys and memoization.

    Canonicalization (applied identically on cold and warm paths):

    * staging slot budget ``(sram_budget - act) // buffers`` is clamped to
      the model's total weight bytes (any larger budget is equivalent)
      and floored to the quarter-pow2 ladder, but never below the largest
      single layer (which would fabricate infeasibility);
    * the compute cap is pre-relaxed to the largest single layer (the
      planner does the same), floored to the pow2 ladder, and dropped
      entirely when it can never bind (cap >= total compute);
    * byte-infeasible budgets collapse onto one negative entry per
      (model, platform, quant, buffers).

    The cached value holds the boundaries and the segment tuple (both
    functions of the key alone); hits re-materialize a
    :class:`SegmentedModel` against the *caller's* platform object with
    its segment memo pre-seeded.

    Raises:
        SegmentationError: when no segmentation fits (cached too).
    """
    max_w, total_w, act, max_c, total_c = _model_costs(model, platform, quant)
    slot_cap = (sram_budget - act) // buffers
    if slot_cap < max_w:
        slot_q = -1  # byte-infeasible: one canonical negative entry
    elif slot_cap >= total_w:
        slot_q = total_w  # saturated: every contiguous partition fits
    else:
        slot_q = max(quarter_pow2_floor(slot_cap), max_w)
    if max_segment_compute is None:
        cap_q: Optional[int] = None
    else:
        cap_eff = max(max_segment_compute, max_c)
        if cap_eff >= total_c:
            cap_q = None  # can never bind: a segment's compute <= total
        else:
            cap_q = max(pow2_floor(cap_eff), max_c)
    cache = CACHES["search"] if _enabled else None
    if cache is not None:
        key = (
            _model_fingerprint(model),
            planner_platform_fingerprint(platform),
            _quant_fingerprint(quant),
            buffers,
            slot_q,
            cap_q,
        )
        found, value = cache.get(key)
        if not found:
            # Second tier: the persistent content-addressed plan store.
            # A store hit is promoted into the LRU, so one process pays
            # the disk read at most once per key.
            store = planstore.active()
            if store is not None:
                found, value = store.get(key)
                if found:
                    cache.put(key, value)
        if found:
            kind, *payload = value
            if kind == "err":
                raise SegmentationError(payload[0])
            if kind == "err-unfit":
                raise SegmentationError(
                    _unfit_message(model, max_w, slot_cap, sram_budget,
                                   act, buffers)
                )
            boundaries, segments = payload
            hit = SegmentedModel(
                model=model,
                platform=platform,
                quant=quant,
                boundaries=boundaries,
                buffers=buffers,
            )
            # The segment tuple is fully determined by the key (model,
            # planner platform projection, quant, boundaries), so seed
            # the per-instance memo instead of re-materializing it.
            object.__setattr__(hit, "_segments_memo", segments)
            return hit
    if slot_q < 0:
        # The canonical negative entry collapses every byte-infeasible
        # budget onto one key, so the cached value must not embed this
        # caller's numbers: a marker is stored and the message rendered
        # per caller (cold and warm alike) — keeping error reasons a
        # pure function of the call arguments, which journal replay
        # across process generations relies on.
        if cache is not None:
            cache.put(key, ("err-unfit",))
            _store_put(key, ("err-unfit",))
        raise SegmentationError(
            _unfit_message(model, max_w, slot_cap, sram_budget, act, buffers)
        )
    budget_q = slot_q * buffers + act
    try:
        seg = search_segmentation(
            model,
            platform,
            budget_q,
            quant=quant,
            buffers=buffers,
            max_segment_compute=cap_q,
        )
    except SegmentationError as exc:
        if cache is not None:
            cache.put(key, ("err", str(exc)))
            _store_put(key, ("err", str(exc)))
        raise
    if cache is not None:
        value = ("ok", seg.boundaries, seg.segments())
        cache.put(key, value)
        _store_put(key, value)
    return seg


def _store_put(key: Any, value: Any) -> None:
    """Write-through a cold search result to the persistent store."""
    store = planstore.active()
    if store is not None:
        store.put(key, value)


def _taskset_fingerprint(taskset: TaskSet) -> Any:
    """Everything :func:`repro.core.analysis.analyze` reads, hand-rolled.

    The generic :func:`freeze` walks every dataclass field recursively
    (segment names, byte bookkeeping, ...); admission sweeps fingerprint
    thousands of single-use task sets, so this flat tuple of the
    analysis-relevant fields is worth roughly a 10x on key construction.
    """
    return tuple(
        (
            t.name, t.period, t.deadline, t.priority, t.phase, t.buffers,
            tuple((s.load_cycles, s.compute_cycles) for s in t.segments),
        )
        for t in taskset
    )


def cached_analyze(taskset: TaskSet, method: str = "rtmdm") -> AnalysisResult:
    """Schedulability analysis with exact-key memoization.

    The key is a deep fingerprint of the (frozen) task set plus the
    method name — everything :func:`repro.core.analysis.analyze` reads.
    The cached :class:`AnalysisResult` is treated as immutable by all
    callers.
    """
    if not _enabled:
        return analyze(taskset, method)
    cache = CACHES["analysis"]
    key = (_taskset_fingerprint(taskset), method)
    found, result = cache.get(key)
    if found:
        return result
    result = analyze(taskset, method)
    cache.put(key, result)
    return result
