"""RT-MDM: real-time scheduling for multi-DNN inference on MCUs with
external memory — a from-scratch reproduction (DAC 2024).

The public API in one breath::

    from repro import RtMdm, build_model, get_platform

    rt = RtMdm(get_platform("f746-qspi"))
    rt.add_task("kws", build_model("ds-cnn"), period_s=0.200)
    rt.add_task("vww", build_model("mobilenet-v1-0.25"), period_s=1.000)
    config = rt.configure()          # segment, plan SRAM, assign priorities
    assert config.admitted           # offline schedulability guarantee
    result = config.simulate()       # discrete-event validation
    assert result.no_misses

Package map (see DESIGN.md for the full inventory):

* :mod:`repro.hw` — MCU / external memory / DMA / timing models.
* :mod:`repro.dnn` — layer algebra, model zoo, quantization, splitting.
* :mod:`repro.sched` — segmented task model, two-resource simulator, RTA.
* :mod:`repro.core` — RT-MDM: segmentation, buffers, analyses, framework.
* :mod:`repro.baselines` — sequential / single-buffer / NP-whole / XIP.
* :mod:`repro.workload` — synthetic task sets and named scenarios.
* :mod:`repro.eval` — experiment drivers for every table and figure.
"""

from repro.core.framework import Configuration, RtMdm, TaskSpec
from repro.dnn.quantization import FLOAT32, INT8
from repro.dnn.zoo import build_model, list_models
from repro.hw.presets import get_platform

__version__ = "0.1.0"

__all__ = [
    "RtMdm",
    "Configuration",
    "TaskSpec",
    "build_model",
    "list_models",
    "get_platform",
    "INT8",
    "FLOAT32",
    "__version__",
]
