"""Deterministic discrete-event simulator for segmented tasks on CPU + DMA.

The platform has two serialized resources:

* the **CPU**, which executes segment compute bursts under a
  :class:`~repro.sched.policies.CpuPolicy`;
* the **DMA engine**, which stages segment weights; transfers are
  non-preemptive and arbitrated FIFO or by task priority
  (:class:`~repro.hw.dma.DmaArbitration`).

Per task, jobs are processed FIFO (only the oldest incomplete job makes
progress).  Within a job, segment *j*'s compute requires its load to have
completed, and segment *j*'s load may only start once segment
``j - buffers``'s compute has finished (staging buffer reuse).

All state is integer cycles; ties are broken deterministically, so a
simulation is exactly reproducible.
"""

from __future__ import annotations

import heapq
import itertools
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.hw.dma import DmaArbitration
from repro.sched.policies import CpuPolicy
from repro.sched.task import PeriodicTask, TaskSet
from repro.sched.trace import Trace, TraceEvent

_RELEASE = 0
_DMA_DONE = 1
_CPU_DONE = 2


@dataclass
class _Job:
    """Runtime state of one released job."""

    task: PeriodicTask
    task_pos: int
    index: int
    release: int
    abs_deadline: int
    loads_issued: int = 0
    loads_done: int = 0
    computes_done: int = 0
    compute_remaining: Optional[int] = None
    load_eligible_since: Optional[int] = None
    finish: Optional[int] = None

    @property
    def complete(self) -> bool:
        return self.computes_done == self.task.num_segments

    def load_eligible(self) -> bool:
        """Whether the next load may be issued (buffer available)."""
        j = self.loads_issued
        return j < self.task.num_segments and j - self.computes_done < self.task.buffers

    def compute_ready(self) -> bool:
        """Whether the next compute segment has its weights staged."""
        return self.computes_done < self.loads_done


@dataclass
class TaskStats:
    """Per-task simulation outcome."""

    name: str
    responses: List[int] = field(default_factory=list)
    misses: int = 0
    unfinished: int = 0

    @property
    def jobs(self) -> int:
        """Jobs released (finished + unfinished)."""
        return len(self.responses) + self.unfinished

    @property
    def max_response(self) -> Optional[int]:
        """Worst observed response time, or None if no job finished."""
        return max(self.responses) if self.responses else None


@dataclass
class SimResult:
    """Outcome of one simulation run."""

    stats: Dict[str, TaskStats]
    trace: Optional[Trace]
    cpu_busy: int
    dma_busy: int
    end_time: int
    aborted_on_miss: bool = False
    truncated: bool = False

    @property
    def total_misses(self) -> int:
        """Deadline misses plus jobs that never finished."""
        return sum(s.misses + s.unfinished for s in self.stats.values())

    @property
    def no_misses(self) -> bool:
        """True iff every released job met its deadline."""
        return self.total_misses == 0 and not self.aborted_on_miss

    def max_response(self, task_name: str) -> Optional[int]:
        """Worst observed response time of ``task_name``."""
        return self.stats[task_name].max_response


@dataclass(frozen=True)
class SimConfig:
    """Simulation parameters.

    Attributes:
        policy: CPU scheduling policy.
        dma_arbitration: DMA queue ordering.
        horizon: Jobs are released while ``release < horizon``; released
            jobs then run to completion (subject to ``hard_cap_factor``).
        record_trace: Keep a full :class:`~repro.sched.trace.Trace`
            (memory-heavy for long runs).
        abort_on_miss: Stop at the first deadline miss (fast empirical
            schedulability checks).
        hard_cap_factor: Terminate anyway at ``horizon * factor`` and
            count incomplete jobs as unfinished (guards overload runs).
        dma_channels: Number of independent DMA channels (transfers on
            different channels proceed in parallel; the analyses model
            one channel, which is conservative for more).
        sporadic_slack: When positive, releases are *sporadic*: after
            each job, the next arrives ``period + U(0, slack * period)``
            cycles later (seeded by ``seed``; exactly reproducible).
            The periodic analyses remain valid — ``period`` stays the
            minimum inter-arrival time.
        seed: Random seed for sporadic release draws.
    """

    policy: CpuPolicy = CpuPolicy.FP_NP
    dma_arbitration: DmaArbitration = DmaArbitration.PRIORITY
    horizon: int = 0
    record_trace: bool = False
    abort_on_miss: bool = False
    hard_cap_factor: float = 4.0
    sporadic_slack: float = 0.0
    seed: int = 0
    dma_channels: int = 1

    def __post_init__(self) -> None:
        if self.sporadic_slack < 0:
            raise ValueError(
                f"sporadic_slack must be >= 0, got {self.sporadic_slack}"
            )
        if self.dma_channels < 1:
            raise ValueError(
                f"dma_channels must be >= 1, got {self.dma_channels}"
            )


class Simulator:
    """Event-driven executor for a :class:`~repro.sched.task.TaskSet`."""

    def __init__(self, taskset: TaskSet, config: SimConfig) -> None:
        if config.horizon <= 0:
            raise ValueError(f"horizon must be positive, got {config.horizon}")
        self.taskset = taskset
        self.config = config
        self.trace = Trace() if config.record_trace else None
        self._heap: List[Tuple[int, int, int, object]] = []
        self._seq = itertools.count()
        self._queues: Dict[str, List[_Job]] = {t.name: [] for t in taskset}
        self._stats = {t.name: TaskStats(name=t.name) for t in taskset}
        self._cpu_job: Optional[_Job] = None
        self._cpu_start = 0
        self._cpu_token = 0
        self._dma_channels: Dict[int, _Job] = {}
        self._cpu_busy = 0
        self._dma_busy = 0
        self._aborted = False
        self._truncated = False
        self._hard_cap = int(config.horizon * config.hard_cap_factor) + max(
            t.period for t in taskset
        )
        self._arrival_rng = random.Random(config.seed)

    # ------------------------------------------------------------------
    # Priorities (lower tuple = served first)
    # ------------------------------------------------------------------
    def _cpu_key(self, job: _Job) -> Tuple:
        if self.config.policy.deadline_driven:
            return (job.abs_deadline, job.task.priority, job.release, job.task_pos)
        return (job.task.priority, job.release, job.task_pos)

    def _dma_key(self, job: _Job) -> Tuple:
        if self.config.dma_arbitration is DmaArbitration.FIFO:
            since = job.load_eligible_since if job.load_eligible_since is not None else 0
            return (since, job.release, job.task_pos)
        return self._cpu_key(job)

    # ------------------------------------------------------------------
    # Event plumbing
    # ------------------------------------------------------------------
    def _push(self, time: int, kind: int, payload: object) -> None:
        heapq.heappush(self._heap, (time, next(self._seq), kind, payload))

    def _trace(self, **kwargs) -> None:
        if self.trace is not None:
            self.trace.add(TraceEvent(**kwargs))

    # ------------------------------------------------------------------
    # Job lifecycle
    # ------------------------------------------------------------------
    def _head(self, task_name: str) -> Optional[_Job]:
        queue = self._queues[task_name]
        return queue[0] if queue else None

    def _release(self, time: int, task: PeriodicTask, task_pos: int, index: int) -> None:
        job = _Job(
            task=task,
            task_pos=task_pos,
            index=index,
            release=time,
            abs_deadline=time + task.deadline,
        )
        self._queues[task.name].append(job)
        self._trace(
            time=time, duration=0, resource="", kind="release", task=task.name, job=index
        )
        next_time = time + task.period
        if self.config.sporadic_slack > 0:
            slack = int(task.period * self.config.sporadic_slack)
            if slack > 0:
                next_time += self._arrival_rng.randrange(slack + 1)
        if next_time < self.config.horizon:
            self._push(next_time, _RELEASE, (task_pos, index + 1))

    def _complete_job(self, time: int, job: _Job) -> None:
        job.finish = time
        response = time - job.release
        stats = self._stats[job.task.name]
        stats.responses.append(response)
        if time > job.abs_deadline:
            stats.misses += 1
            self._trace(
                time=time,
                duration=0,
                resource="",
                kind="miss",
                task=job.task.name,
                job=job.index,
            )
            if self.config.abort_on_miss:
                self._aborted = True
        self._trace(
            time=time,
            duration=0,
            resource="",
            kind="complete",
            task=job.task.name,
            job=job.index,
        )
        queue = self._queues[job.task.name]
        assert queue and queue[0] is job, "completed job must be the task's head job"
        queue.pop(0)

    # ------------------------------------------------------------------
    # DMA scheduling
    # ------------------------------------------------------------------
    def _advance_zero_loads(self) -> None:
        """Complete zero-byte loads instantly; they never use the DMA."""
        for task in self.taskset:
            job = self._head(task.name)
            if job is None:
                continue
            while (
                job.load_eligible()
                and job.task.segments[job.loads_issued].load_cycles == 0
            ):
                job.loads_issued += 1
                job.loads_done += 1
                job.load_eligible_since = None

    def _schedule_dma(self, time: int) -> None:
        self._advance_zero_loads()
        while len(self._dma_channels) < self.config.dma_channels:
            in_flight = set(id(j) for j in self._dma_channels.values())
            candidates: List[_Job] = []
            for task in self.taskset:
                job = self._head(task.name)
                if (
                    job is None
                    or id(job) in in_flight  # one outstanding transfer per job
                    or not job.load_eligible()
                ):
                    continue
                if job.load_eligible_since is None:
                    job.load_eligible_since = time
                candidates.append(job)
            if not candidates:
                return
            job = min(candidates, key=self._dma_key)
            segment = job.task.segments[job.loads_issued]
            channel = min(
                c for c in range(self.config.dma_channels)
                if c not in self._dma_channels
            )
            self._dma_channels[channel] = job
            job.load_eligible_since = None
            self._dma_busy += segment.load_cycles
            self._trace(
                time=time,
                duration=segment.load_cycles,
                resource="dma" if channel == 0 else f"dma{channel + 1}",
                kind="load",
                task=job.task.name,
                job=job.index,
                segment=job.loads_issued,
            )
            self._push(time + segment.load_cycles, _DMA_DONE, (channel, job))

    def _dma_done(self, time: int, channel: int, job: _Job) -> None:
        assert self._dma_channels.get(channel) is job, (
            "DMA completion for a job that is not transferring on this channel"
        )
        del self._dma_channels[channel]
        job.loads_issued += 1
        job.loads_done += 1

    # ------------------------------------------------------------------
    # CPU scheduling
    # ------------------------------------------------------------------
    def _cpu_candidates(self) -> List[_Job]:
        ready = []
        for task in self.taskset:
            job = self._head(task.name)
            if job is not None and not job.complete and job.compute_ready():
                ready.append(job)
        return ready

    def _start_compute(self, time: int, job: _Job) -> None:
        segment = job.task.segments[job.computes_done]
        if job.compute_remaining is None:
            job.compute_remaining = segment.compute_cycles
        self._cpu_job = job
        self._cpu_start = time
        self._cpu_token += 1
        self._push(time + job.compute_remaining, _CPU_DONE, (self._cpu_token, job))

    def _stop_compute(self, time: int) -> None:
        """Preempt the running segment, banking its progress."""
        job = self._cpu_job
        assert job is not None and job.compute_remaining is not None
        elapsed = time - self._cpu_start
        if elapsed > 0:
            self._cpu_busy += elapsed
            self._trace(
                time=self._cpu_start,
                duration=elapsed,
                resource="cpu",
                kind="compute",
                task=job.task.name,
                job=job.index,
                segment=job.computes_done,
            )
        job.compute_remaining -= elapsed
        self._trace(
            time=time, duration=0, resource="", kind="preempt", task=job.task.name, job=job.index
        )
        self._cpu_job = None
        self._cpu_token += 1  # invalidate the in-flight CPU_DONE event

    def _schedule_cpu(self, time: int) -> None:
        candidates = self._cpu_candidates()
        if self._cpu_job is None:
            if candidates:
                self._start_compute(time, min(candidates, key=self._cpu_key))
            return
        if not self.config.policy.preemptive:
            return
        others = [c for c in candidates if c is not self._cpu_job]
        if not others:
            return
        best = min(others, key=self._cpu_key)
        if self._cpu_key(best) < self._cpu_key(self._cpu_job):
            self._stop_compute(time)
            self._start_compute(time, best)

    def _cpu_done(self, time: int, token: int, job: _Job) -> None:
        if token != self._cpu_token or self._cpu_job is not job:
            return  # stale completion from a preempted burst
        duration = time - self._cpu_start
        self._cpu_busy += duration
        self._trace(
            time=self._cpu_start,
            duration=duration,
            resource="cpu",
            kind="compute",
            task=job.task.name,
            job=job.index,
            segment=job.computes_done,
        )
        self._cpu_job = None
        self._cpu_token += 1
        job.compute_remaining = None
        job.computes_done += 1
        if job.complete:
            self._complete_job(time, job)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self) -> SimResult:
        """Execute the simulation and return aggregated results."""
        for pos, task in enumerate(self.taskset):
            if task.phase < self.config.horizon:
                self._push(task.phase, _RELEASE, (pos, 0))
        time = 0
        while self._heap and not self._aborted:
            time, _, kind, payload = heapq.heappop(self._heap)
            if time > self._hard_cap:
                self._truncated = True
                break
            if kind == _RELEASE:
                pos, index = payload  # type: ignore[misc]
                self._release(time, self.taskset[pos], pos, index)
            elif kind == _DMA_DONE:
                channel, job = payload  # type: ignore[misc]
                self._dma_done(time, channel, job)
            else:
                token, job = payload  # type: ignore[misc]
                self._cpu_done(time, token, job)
            # Drain simultaneous events before making scheduling decisions.
            while self._heap and self._heap[0][0] == time and not self._aborted:
                _, _, kind, payload = heapq.heappop(self._heap)
                if kind == _RELEASE:
                    pos, index = payload  # type: ignore[misc]
                    self._release(time, self.taskset[pos], pos, index)
                elif kind == _DMA_DONE:
                    channel, job = payload  # type: ignore[misc]
                    self._dma_done(time, channel, job)
                else:
                    token, job = payload  # type: ignore[misc]
                    self._cpu_done(time, token, job)
            if not self._aborted:
                self._schedule_dma(time)
                self._schedule_cpu(time)
        for task in self.taskset:
            self._stats[task.name].unfinished += len(self._queues[task.name])
        return SimResult(
            stats=self._stats,
            trace=self.trace,
            cpu_busy=self._cpu_busy,
            dma_busy=self._dma_busy,
            end_time=time,
            aborted_on_miss=self._aborted,
            truncated=self._truncated,
        )


def simulate(taskset: TaskSet, config: SimConfig) -> SimResult:
    """Convenience wrapper: build a :class:`Simulator` and run it."""
    return Simulator(taskset, config).run()
