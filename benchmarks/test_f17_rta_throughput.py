"""Benchmark for EXP-F17: mass-schedulability analysis throughput.

The vectorized RTA engine's headline number: task sets analyzed per
second under the full method family, scalar oracle vs one
struct-of-arrays batch vs the batch sharing a FixpointCache.  The rows
assert bit-identity against the scalar oracle and that the vector
engine actually engaged (no silent stand-down); the throughputs land in
``meta`` and hence in BENCH_suite.json.
"""

from conftest import bench_experiment


def test_f17_rta_throughput(benchmark):
    result = bench_experiment(benchmark, "EXP-F17")
    modes = result.column("mode")
    assert modes == ["scalar", "vectorized", "vectorized+cache"]
    # Every mode sees the same admitted population, bit-identically.
    assert len(set(result.column("schedulable"))) == 1
    assert all(flag == 1 for flag in result.column("identical"))
    # The vector engine must have engaged (numpy present, kill switch
    # off, no whole-batch stand-down) for the vectorized modes.
    assert result.column("vec_engaged") == [0, 1, 1]
    for key in ("scalar_sets_per_s", "vectorized_sets_per_s",
                "vectorized_cache_sets_per_s"):
        assert result.meta[key] is None or result.meta[key] > 0
