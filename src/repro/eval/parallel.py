"""Deterministic parallel execution of experiment work units.

The experiment drivers decompose their sweeps into independent work
units — one per ``(set index, sweep point)`` — that are dispatched over a
:class:`~concurrent.futures.ProcessPoolExecutor` and merged back in unit
order.  Three properties make the parallel output **bit-identical** to
the serial path:

1. every unit derives its randomness from a ``_stable_seed`` of its own
   coordinates (never from shared RNG state), so results do not depend
   on execution order;
2. ``ProcessPoolExecutor.map`` returns results in submission order, and
   drivers assemble rows by iterating units in that same fixed order, so
   verdict lists and floating-point reductions sum in exactly the serial
   order;
3. the plan cache (:mod:`repro.core.segcache`) is path-independent by
   construction — hits return the same objects a cold run would compute.

``jobs=1`` (the default) bypasses the pool entirely and runs every unit
inline, preserving the original serial code path.  The default worker
count comes from the ``REPRO_JOBS`` environment variable.

Workers are plain module-level functions taking one picklable unit tuple;
cache-counter deltas travel back with each unit's payload so hit/miss
totals are exact in both modes (worker processes have their own caches).
"""

from __future__ import annotations

import os
import zlib
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Iterable, List, Optional, Tuple

from repro.core.analysis import AnalysisResult, analyze
from repro.sched.rta import FixpointCache
from repro.sched.simulator import SharedSetup, SimConfig, SimResult, simulate
from repro.sched.task import TaskSet

__all__ = [
    "analyze_batch",
    "resolve_jobs",
    "run_units",
    "simulate_batch",
    "stable_seed",
]


def stable_seed(*parts: Any) -> int:
    """Deterministic seed from mixed parts.

    ``hash()`` of strings is randomized per process and must never seed
    an experiment — CRC32 of the ``repr`` is stable across processes and
    Python versions, which is what makes work units independent of the
    process they run in.
    """
    text = "|".join(repr(p) for p in parts)
    return zlib.crc32(text.encode("utf-8"))


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Effective worker count: explicit ``jobs``, else ``REPRO_JOBS``, else 1.

    ``None`` and ``0`` both mean "use the environment default"; anything
    below 1 after resolution clamps to serial.
    """
    if jobs is None or jobs == 0:
        env = os.environ.get("REPRO_JOBS", "").strip()
        try:
            jobs = int(env) if env else 1
        except ValueError:
            jobs = 1
    return max(1, int(jobs))


def simulate_batch(
    cases: Iterable[Tuple[TaskSet, SimConfig]],
) -> List[SimResult]:
    """Simulate ``cases`` in order, amortizing per-run setup.

    A work unit's simulations (the phasings of one drawn set, the
    systems derived from one case, the recovery ladders of one fault
    sweep point) almost always share their period structure; the period
    maximum and the hyperperiod LCM that seed steady-state folding are
    then computed once per distinct structure (keyed on the period
    tuple) instead of once per run.  Every :class:`SimResult` is
    bit-identical to a scalar ``simulate(taskset, config)`` call — the
    shared setup carries only input-derived values.

    When the SoA engine is active, one preallocated
    :class:`~repro.sched.simcore.Arena` serves the whole batch: the
    response buffer and segment columns warm up on the first run of
    each structure and every later run allocates nothing.
    """
    arena = None
    try:
        from repro.sched import simcore

        if simcore.enabled():
            arena = simcore.Arena()
    except ImportError:  # pragma: no cover - simcore ships with the package
        pass
    setups: dict = {}
    results: List[SimResult] = []
    for taskset, config in cases:
        key = tuple(t.period for t in taskset)
        setup = setups.get(key)
        if setup is None:
            setup = setups[key] = SharedSetup(taskset)
        results.append(simulate(taskset, config, setup, arena))
    return results


def analyze_batch(
    cases: Iterable[Tuple[TaskSet, str]],
    cache: Optional[FixpointCache] = None,
) -> List[AnalysisResult]:
    """Analyze ``cases`` in order through one shared fixpoint memo.

    Sweep neighbors and method variants over the same set repeat most of
    their response-time fixpoint problems verbatim; a batch-wide
    :class:`~repro.sched.rta.FixpointCache` returns those bounds without
    iterating.  Results are bit-identical to scalar ``analyze`` calls
    (exact-key memoization only — no warm starts, which need a caller
    guaranteeing monotone call order).

    When the vectorized engine is available (numpy importable and
    ``REPRO_VEC_RTA`` unset/1), the whole batch is packed into one
    struct-of-arrays solve via :func:`repro.sched.vecrta.analyze_taskset_batch`
    — same results, same cache protocol, one array iteration per
    fixpoint step across all sets.
    """
    if cache is None:
        cache = FixpointCache()
    from repro.sched import vecrta

    if vecrta.enabled():
        return vecrta.analyze_taskset_batch(cases, cache=cache)
    return [analyze(taskset, method, cache=cache) for taskset, method in cases]


def run_units(
    worker: Callable[[Any], Any],
    units: Iterable[Any],
    jobs: Optional[int] = None,
    chunksize: Optional[int] = None,
    absorb_deltas: bool = False,
    warm_prefix: int = 0,
) -> List[Any]:
    """Run ``worker`` over ``units``, preserving unit order in the result.

    With ``jobs <= 1`` every unit runs inline in the calling process (the
    serial path).  Otherwise units are dispatched to a process pool;
    ``chunksize`` controls how many consecutive units each dispatch
    carries — drivers pass one sweep-row per chunk so a worker keeps the
    plan-cache locality of consecutive sweep points for the same set.

    Args:
        worker: Module-level function of one unit (must be picklable).
        units: Work units in the serial iteration order.
        jobs: Worker processes; ``None``/``0`` = ``REPRO_JOBS`` env, else 1.
        chunksize: Units per pool dispatch (default: ~4 chunks per worker).
        absorb_deltas: The experiment-worker protocol returns
            ``(payload, cache_delta)`` per unit; when set, deltas coming
            back from a *pool* are folded into this process's plan-cache
            counters (inline units already counted themselves), so
            global hit/miss totals are exact at any worker count.
        warm_prefix: Run this many leading units inline *before* forking
            the pool.  Plan-cache misses are front-loaded (the first few
            sweep rows create most entries), and on fork-based platforms
            worker processes inherit the parent's populated caches — so
            a short warm prefix spares every worker its own cold start.
            Purely a placement choice: results are identical either way.

    Returns:
        ``[worker(u) for u in units]`` — identical contents either way.
    """
    units = list(units)
    jobs = resolve_jobs(jobs)
    if jobs <= 1 or len(units) <= 1:
        return [worker(unit) for unit in units]
    head_n = min(max(warm_prefix, 0), len(units) - 1)
    head = [worker(unit) for unit in units[:head_n]]
    rest = units[head_n:]
    if chunksize is None:
        chunksize = max(1, -(-len(rest) // (jobs * 4)))
    with ProcessPoolExecutor(max_workers=min(jobs, len(rest))) as pool:
        tail = list(pool.map(worker, rest, chunksize=chunksize))
    if absorb_deltas:
        from repro.core import segcache

        for result in tail:
            segcache.absorb(result[1])
    return head + tail
