"""Crash-tolerant serving: decision journal, checkpoint/restore, ingress.

The plain :class:`~repro.online.runtime.OnlineRuntime` assumes the
admission controller never dies and every request arrives exactly once,
in order.  This module drops both assumptions while keeping decisions
**bit-identical** to the uninterrupted run:

* **Write-ahead decision journal** (:class:`DecisionJournal`) — a
  versioned ``rtmdm-journal/1`` JSON-lines file.  Every request is
  appended as an *intent* record **before** the controller mutates any
  state, and the resulting decision as a *commit* record after.  Every
  record is CRC-tagged; ``fsync`` marker records delimit durable
  prefixes.  Because admission decisions are a deterministic function of
  (controller state, request), replaying the journaled intents through a
  fresh controller reproduces the exact decision log — commit records
  exist to *verify* that replay, not to drive it.
* **Checkpoint/restore** — :meth:`AdmissionController.snapshot` payloads
  are embedded in the journal every ``checkpoint_interval`` decisions,
  so recovery replays only the journal suffix past the last checkpoint.
* **Idempotent, validated ingress** (:class:`IngressGate`) — requests
  travel in :class:`Envelope` wrappers carrying a producer-assigned
  monotonic sequence number and a unique request id.  The gate
  deduplicates (id window + stale-sequence check), reorders out-of-order
  deliveries through a bounded-holdback buffer, and rejects malformed
  envelopes with typed errors — so duplicated / reordered /
  retransmitted streams decide exactly like the canonical stream.
* **Runtime invariant monitor** (:class:`InvariantMonitor`) — inline
  checks after every decision: SRAM reservations never exceed capacity,
  the admitted union always passes an independent schedulability
  re-check, mode changes never leave a draining predecessor's buffers
  unaccounted, and the decision log stays dense and time-ordered.
  Violations raise :class:`InvariantViolation` (fail-loud; the chaos
  harness and CI treat any skipped check as a failure).

:func:`serve_durable` wires the pieces into the serve loop and
:func:`recover` rebuilds a controller from a (possibly torn or
corrupted) journal, truncating the invalid tail and repairing missing
commit records.  :mod:`repro.robust.chaos` drives both under injected
crashes, journal damage, and adversarial delivery patterns.
"""

from __future__ import annotations

import json
import os
import time
import zlib
from collections import deque
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Tuple,
)

from repro.online.admission import (
    AdmissionController,
    CheckpointError,
    Decision,
)
from repro.online.events import Request

if TYPE_CHECKING:  # pragma: no cover - type hints only
    from repro.online.events import RequestTrace
    from repro.online.runtime import OnlineRuntime, ServeReport

#: Journal file schema tag (first record of every journal).
JOURNAL_SCHEMA = "rtmdm-journal/1"


class JournalError(RuntimeError):
    """The journal is unusable: bad header, sequence gap, or divergence."""


class InjectedCrash(RuntimeError):
    """Raised by :func:`serve_durable` at a chaos-selected decision index.

    Models the controller process dying after the intent record hit the
    journal but before the decision committed — the worst crash point,
    since the in-memory state is lost mid-decision.
    """

    def __init__(self, seq: int) -> None:
        super().__init__(f"injected crash at decision seq {seq}")
        self.seq = seq


# ----------------------------------------------------------------------
# Journal records
# ----------------------------------------------------------------------


def _crc(record: Dict) -> str:
    """CRC32 (hex) over the canonical JSON of ``record`` minus ``crc``."""
    canonical = json.dumps(
        {k: v for k, v in record.items() if k != "crc"},
        sort_keys=True,
        separators=(",", ":"),
    )
    return f"{zlib.crc32(canonical.encode('utf-8')):08x}"


class DecisionJournal:
    """Append-only write-ahead journal of admission decisions.

    One JSON object per line; record types: ``header`` (first line),
    ``intent`` (request, written before any state mutation), ``commit``
    (the decision), ``checkpoint`` (full controller snapshot), ``event``
    (a non-mutating observation — e.g. a fleet shard's shed or timeout
    record — that recovery counts but never replays), and ``fsync``
    (durability marker — the file is flushed and fsynced right after
    the marker is written).
    """

    def __init__(self, path: str, handle, fsync_interval: int = 8) -> None:
        if fsync_interval < 1:
            raise ValueError(
                f"fsync_interval must be >= 1, got {fsync_interval}"
            )
        self.path = path
        self._handle = handle
        self._fsync_interval = fsync_interval
        self._since_sync = 0
        self.records_written = 0
        self._last_seq = -1

    @classmethod
    def create(
        cls, path: str, config: Dict, fsync_interval: int = 8
    ) -> "DecisionJournal":
        """Start a fresh journal (truncates ``path``) with a header record."""
        handle = open(path, "w", encoding="utf-8")
        journal = cls(path, handle, fsync_interval)
        journal._append(
            {"type": "header", "schema": JOURNAL_SCHEMA, "config": config}
        )
        journal.sync()
        return journal

    @classmethod
    def resume(cls, path: str, fsync_interval: int = 8) -> "DecisionJournal":
        """Reopen an existing journal for appending (after recovery)."""
        handle = open(path, "a", encoding="utf-8")
        return cls(path, handle, fsync_interval)

    def _append(self, record: Dict) -> None:
        if self._handle is None:
            raise JournalError(f"journal {self.path} is closed")
        record["crc"] = _crc(record)
        self._handle.write(
            json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
        )
        self.records_written += 1
        self._since_sync += 1

    def _maybe_sync(self) -> None:
        if self._since_sync >= self._fsync_interval:
            self.sync()

    def append_intent(
        self, seq: int, request: Request, extra: Optional[Dict] = None
    ) -> None:
        """Journal the request *before* the controller mutates state.

        ``extra`` carries caller metadata replay needs verbatim (the
        fleet layer stores its trace seq, retry attempt and degrade tag
        there); it never influences the contiguity check.
        """
        if seq != self._last_seq + 1 and self._last_seq >= 0:
            raise JournalError(
                f"non-contiguous intent seq {seq} after {self._last_seq}"
            )
        self._last_seq = seq
        record: Dict = {
            "type": "intent", "seq": seq, "request": request.to_dict()
        }
        if extra:
            record["extra"] = extra
        self._append(record)
        self._maybe_sync()

    def append_event(self, kind: str, payload: Dict) -> None:
        """Journal a non-mutating observation (shed, timeout, ...).

        Events carry no ``seq`` and never advance the intent contiguity
        counter: recovery *counts* them (so e.g. shed totals survive a
        restart) but never replays them through the decision engine.
        """
        self._append({"type": "event", "kind": kind, "payload": payload})
        self._maybe_sync()

    def append_commit(self, seq: int, decision: Dict) -> None:
        """Journal the decision the controller reached for intent ``seq``."""
        self._append({"type": "commit", "seq": seq, "decision": decision})
        self._maybe_sync()

    def append_checkpoint(self, seq: int, state: Dict) -> None:
        """Embed a full controller snapshot covering decisions ``< seq``."""
        self._append({"type": "checkpoint", "seq": seq, "state": state})
        self.sync()  # checkpoints are durability barriers by definition

    def sync(self) -> None:
        """Write an fsync marker, flush, and fsync the journal file."""
        self._append({"type": "fsync", "seq": self._last_seq})
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._since_sync = 0

    def close(self) -> None:
        if self._handle is not None:
            try:
                self._handle.flush()
                os.fsync(self._handle.fileno())
            finally:
                self._handle.close()
                self._handle = None


@dataclass(frozen=True)
class JournalScan:
    """Validated prefix of a journal file.

    ``records`` holds every record whose line parsed and whose CRC
    matched, in file order (header excluded); scanning stops at the
    first torn or corrupt line — everything after it is counted in
    ``truncated_lines`` and ignored, standard WAL-prefix semantics.
    """

    header: Dict
    records: Tuple[Dict, ...]
    valid_bytes: int
    truncated_lines: int


def scan_journal(path: str) -> JournalScan:
    """Parse the valid prefix of a journal (CRC-checked, torn-tail safe).

    Raises:
        JournalError: the file is missing, empty, or its first record is
            not a valid ``rtmdm-journal/1`` header.
    """
    try:
        raw = open(path, "rb").read()
    except OSError as exc:
        raise JournalError(f"cannot read journal {path}: {exc}") from exc
    records: List[Dict] = []
    header: Optional[Dict] = None
    valid_bytes = 0
    truncated = 0
    offset = 0
    for line in raw.splitlines(keepends=True):
        end = offset + len(line)
        text = line.strip()
        if text:
            record = _parse_record(text)
            if record is None:
                truncated += sum(
                    1 for rest in raw[offset:].splitlines() if rest.strip()
                )
                break
            if header is None:
                if record.get("type") != "header" or record.get(
                    "schema"
                ) != JOURNAL_SCHEMA:
                    raise JournalError(
                        f"{path}: first record is not an {JOURNAL_SCHEMA} "
                        f"header"
                    )
                header = record
            else:
                records.append(record)
            valid_bytes = end
        offset = end
    if header is None:
        raise JournalError(f"{path}: no valid journal header")
    return JournalScan(
        header=header,
        records=tuple(records),
        valid_bytes=valid_bytes,
        truncated_lines=truncated,
    )


def _parse_record(text: bytes) -> Optional[Dict]:
    """One journal line -> record dict, or None if torn/corrupt."""
    try:
        record = json.loads(text)
    except ValueError:
        return None
    if not isinstance(record, dict) or "type" not in record or "crc" not in record:
        return None
    if record["crc"] != _crc(record):
        return None
    return record


# ----------------------------------------------------------------------
# Recovery
# ----------------------------------------------------------------------


@dataclass
class RecoveryReport:
    """What one journal recovery did (the replay counters chaos asserts)."""

    checkpoint_seq: int
    decisions_replayed: int
    records_scanned: int
    truncated_lines: int
    commits_verified: int
    commits_repaired: int
    recovery_us: float  # wall clock; report-only, never bit-compared

    def to_dict(self) -> Dict:
        return {
            "checkpoint_seq": self.checkpoint_seq,
            "decisions_replayed": self.decisions_replayed,
            "records_scanned": self.records_scanned,
            "truncated_lines": self.truncated_lines,
            "commits_verified": self.commits_verified,
            "commits_repaired": self.commits_repaired,
            "recovery_us": round(self.recovery_us, 1),
        }


def recover(
    path: str,
    factory: Callable[[], AdmissionController],
    fsync_interval: int = 8,
) -> Tuple[AdmissionController, DecisionJournal, RecoveryReport]:
    """Rebuild a controller from a journal and reopen it for appending.

    Restores the last valid checkpoint (if any), replays only the intent
    records past it, verifies each replayed decision against its commit
    record where one survived, appends repaired commits for intents that
    lost theirs, and truncates any torn/corrupt tail off the file.

    Raises:
        JournalError: unreadable journal, intent sequence gap, or a
            replayed decision diverging from its journaled commit.
        CheckpointError: the journal (or its checkpoint) was written
            under a different controller configuration.
    """
    start_ns = time.perf_counter_ns()
    scan = scan_journal(path)
    controller = factory()
    recorded = scan.header.get("config")
    echo = controller.config_echo()
    if recorded != echo:
        raise CheckpointError(
            f"journal {path} was written under a different configuration "
            f"(recorded {recorded!r}, restoring {echo!r})"
        )
    checkpoint_pos = -1
    checkpoint: Optional[Dict] = None
    for pos, record in enumerate(scan.records):
        if record["type"] == "checkpoint":
            checkpoint, checkpoint_pos = record, pos
    if checkpoint is not None:
        controller.restore(checkpoint["state"])
    checkpoint_seq = len(controller.decisions)
    commits: Dict[int, Dict] = {}
    intents: List[Dict] = []
    for record in scan.records[checkpoint_pos + 1:]:
        if record["type"] == "intent":
            intents.append(record)
        elif record["type"] == "commit":
            commits[record["seq"]] = record["decision"]
    replayed = 0
    verified = 0
    repaired: List[Decision] = []
    for record in intents:
        seq = record["seq"]
        if seq < len(controller.decisions):
            continue  # covered by the checkpoint already
        if seq != len(controller.decisions):
            raise JournalError(
                f"{path}: journal gap — intent seq {seq} but controller "
                f"is at {len(controller.decisions)}"
            )
        request = Request.from_dict(record["request"])
        decision = controller.handle(request)
        replayed += 1
        want = commits.get(seq)
        if want is not None:
            if decision.to_dict() != want:
                raise JournalError(
                    f"{path}: replay divergence at seq {seq}: replay "
                    f"decided {decision.to_dict()!r}, journal committed "
                    f"{want!r}"
                )
            verified += 1
        else:
            repaired.append(decision)
    if scan.truncated_lines:
        os.truncate(path, scan.valid_bytes)
    journal = DecisionJournal.resume(path, fsync_interval)
    journal._last_seq = len(controller.decisions) - 1
    for decision in repaired:
        journal.append_commit(decision.seq, decision.to_dict())
    report = RecoveryReport(
        checkpoint_seq=checkpoint_seq,
        decisions_replayed=replayed,
        records_scanned=len(scan.records) + 1,
        truncated_lines=scan.truncated_lines,
        commits_verified=verified,
        commits_repaired=len(repaired),
        recovery_us=(time.perf_counter_ns() - start_ns) / 1000.0,
    )
    return controller, journal, report


# ----------------------------------------------------------------------
# Idempotent, validated ingress
# ----------------------------------------------------------------------


class StreamError(ValueError):
    """An envelope stream violated its integrity contract."""


@dataclass(frozen=True)
class Envelope:
    """Transport wrapper around one request.

    Attributes:
        seq: Producer-assigned monotonic sequence number (0-based
            position in the canonical stream).
        request_id: Globally unique id; the dedup key under
            at-least-once delivery.
        request: The request body.
        arrival_s: Transport timestamp.  Informational only — decisions
            key off the request's *logical* ``time_s``, so transport
            clock skew cannot change any decision.
    """

    seq: int
    request_id: str
    request: Request
    arrival_s: float = 0.0

    def to_dict(self) -> Dict:
        return {
            "seq": self.seq,
            "request_id": self.request_id,
            "request": self.request.to_dict(),
            "arrival_s": self.arrival_s,
        }

    @classmethod
    def from_dict(cls, d: Dict) -> "Envelope":
        """Strictly validate a transport dict.

        Raises:
            StreamError: missing/invalid envelope fields.
            TraceFormatError: malformed request body.
        """
        if not isinstance(d, dict):
            raise StreamError(
                f"envelope must be a JSON object, got {type(d).__name__}"
            )
        for fieldname in ("seq", "request_id", "request"):
            if fieldname not in d:
                raise StreamError(f"envelope missing field {fieldname!r}")
        seq = d["seq"]
        if not isinstance(seq, int) or isinstance(seq, bool) or seq < 0:
            raise StreamError(f"envelope seq must be an int >= 0, got {seq!r}")
        request = Request.from_dict(d["request"])
        return cls(
            seq=seq,
            request_id=str(d["request_id"]),
            request=request,
            arrival_s=float(d.get("arrival_s", 0.0)),
        )


def envelope_stream(trace: "RequestTrace") -> List[Envelope]:
    """The canonical (in-order, exactly-once) envelopes of a trace."""
    return [
        Envelope(
            seq=i,
            request_id=f"r{i:06d}",
            request=request,
            arrival_s=request.time_s,
        )
        for i, request in enumerate(trace)
    ]


@dataclass
class GateStats:
    """Ingress accounting: what the gate absorbed to keep order exact."""

    delivered: int = 0
    emitted: int = 0
    duplicates: int = 0
    stale: int = 0
    max_buffered: int = 0

    def to_dict(self) -> Dict:
        return {
            "delivered": self.delivered,
            "emitted": self.emitted,
            "duplicates": self.duplicates,
            "stale": self.stale,
            "max_buffered": self.max_buffered,
        }


class IngressGate:
    """Normalize an at-least-once, possibly-reordered delivery stream.

    Emits each canonical request exactly once, in sequence order.
    Duplicates (by request id, or by an already-emitted sequence number)
    are silently absorbed; out-of-order envelopes wait in a bounded
    buffer until the gap fills.  A gap wider than ``holdback`` means a
    message was truly lost beyond the reordering window — that raises
    :class:`StreamError` rather than silently skipping decisions.
    """

    def __init__(
        self,
        holdback: int = 64,
        dedup_window: int = 256,
        next_seq: int = 0,
    ) -> None:
        if holdback < 1:
            raise ValueError(f"holdback must be >= 1, got {holdback}")
        if dedup_window < 1:
            raise ValueError(f"dedup_window must be >= 1, got {dedup_window}")
        if next_seq < 0:
            raise ValueError(f"next_seq must be >= 0, got {next_seq}")
        self._holdback = holdback
        self._next = next_seq
        self._buffer: Dict[int, Envelope] = {}
        self._recent_ids: deque = deque(maxlen=dedup_window)
        self._recent_set: set = set()
        self.stats = GateStats()

    @property
    def next_seq(self) -> int:
        """The sequence number the gate is waiting to emit."""
        return self._next

    def pending(self) -> int:
        """Envelopes held back waiting for a gap to fill."""
        return len(self._buffer)

    def _remember(self, request_id: str) -> None:
        if len(self._recent_ids) == self._recent_ids.maxlen:
            self._recent_set.discard(self._recent_ids[0])
        self._recent_ids.append(request_id)
        self._recent_set.add(request_id)

    def offer(self, envelope: Envelope) -> List[Request]:
        """Accept one delivery; return newly in-order requests (maybe [])."""
        self.stats.delivered += 1
        if envelope.seq < self._next:
            self.stats.stale += 1
            return []
        if envelope.request_id in self._recent_set or envelope.seq in self._buffer:
            self.stats.duplicates += 1
            return []
        if envelope.seq - self._next > self._holdback:
            raise StreamError(
                f"reordering holdback exceeded: delivery seq {envelope.seq} "
                f"while still waiting for {self._next} "
                f"(holdback {self._holdback})"
            )
        self._buffer[envelope.seq] = envelope
        self.stats.max_buffered = max(self.stats.max_buffered, len(self._buffer))
        ready: List[Request] = []
        while self._next in self._buffer:
            env = self._buffer.pop(self._next)
            self._remember(env.request_id)
            ready.append(env.request)
            self._next += 1
            self.stats.emitted += 1
        return ready


# ----------------------------------------------------------------------
# Runtime invariant monitor
# ----------------------------------------------------------------------


class InvariantViolation(RuntimeError):
    """An inline runtime invariant failed (always a real bug somewhere)."""

    def __init__(self, invariant: str, message: str) -> None:
        super().__init__(f"[{invariant}] {message}")
        self.invariant = invariant


class InvariantMonitor:
    """Inline re-checks of the properties admission control relies on.

    Independent by construction: the checks go through
    :class:`AdmissionController`'s *class* methods and public state
    views, so a controller whose instance methods were tampered with
    (or whose state was corrupted) is still caught.  ``counts`` records
    how often each check ran — CI fails if any stayed at zero, so a
    silently-skipped invariant cannot pass a chaos gate.
    """

    CHECKS = (
        "sram-capacity",
        "admitted-screen",
        "modechange-accounting",
        "decision-log",
    )

    def __init__(
        self, controller: AdmissionController, check_screen: bool = True
    ) -> None:
        self._controller = controller
        self._check_screen = check_screen
        self.counts: Dict[str, int] = {name: 0 for name in self.CHECKS}

    def check(self, at_cycle: int) -> List[str]:
        """Run every enabled invariant; raise on the first violation."""
        ran = [
            self._sram_capacity(at_cycle),
            self._modechange_accounting(at_cycle),
            self._decision_log(),
        ]
        if self._check_screen:
            ran.append(self._admitted_screen())
        return ran

    def _passed(self, name: str) -> str:
        self.counts[name] += 1
        return name

    def _sram_capacity(self, at_cycle: int) -> str:
        c = self._controller
        reserved = c.reserved_sram(at_cycle)
        capacity = c.platform.usable_sram_bytes
        if reserved > capacity:
            raise InvariantViolation(
                "sram-capacity",
                f"reserved {reserved} B exceeds capacity {capacity} B "
                f"at cycle {at_cycle}",
            )
        return self._passed("sram-capacity")

    def _admitted_screen(self) -> str:
        c = self._controller
        resident = list(c.resident.values())
        if resident:
            # Class-level call on purpose: an instance-level override
            # (the "skipped screen" failure mode) must not fool the
            # monitor into re-using the tampered test.
            ranked = AdmissionController._rank(c, resident)
            ok, _ = AdmissionController._schedulable(c, ranked)
            if not ok:
                names = ", ".join(sorted(i.instance for i in resident))
                raise InvariantViolation(
                    "admitted-screen",
                    f"admitted union {{{names}}} fails the independent "
                    f"schedulability re-check",
                )
        return self._passed("admitted-screen")

    def _modechange_accounting(self, at_cycle: int) -> str:
        c = self._controller
        instances = c.all_instances()
        by_task: Dict[str, List] = {}
        for inst in sorted(instances, key=lambda i: i.start_cycle):
            by_task.setdefault(inst.task, []).append(inst)
        draining = 0
        for chain in by_task.values():
            for pos, inst in enumerate(chain):
                if inst.stop_cycle is None:
                    continue
                successor = chain[pos + 1] if pos + 1 < len(chain) else None
                if successor is not None and (
                    successor.start_cycle < inst.stop_cycle
                ):
                    raise InvariantViolation(
                        "modechange-accounting",
                        f"{successor.instance} starts at "
                        f"{successor.start_cycle} before its predecessor "
                        f"{inst.instance} stops at {inst.stop_cycle}",
                    )
                until = inst.stop_cycle + inst.deadline
                if successor is not None:
                    until = max(until, successor.start_cycle)
                if until > at_cycle:
                    draining += inst.sram_bytes
        reserved = c.reserved_sram(at_cycle) - sum(
            i.sram_bytes for i in c.resident.values()
        )
        if reserved < draining:
            raise InvariantViolation(
                "modechange-accounting",
                f"draining instances still need {draining} B but only "
                f"{reserved} B are reserved at cycle {at_cycle}",
            )
        return self._passed("modechange-accounting")

    def _decision_log(self) -> str:
        decisions = self._controller.decisions
        for pos, decision in enumerate(decisions):
            if decision.seq != pos:
                raise InvariantViolation(
                    "decision-log",
                    f"decision at position {pos} carries seq {decision.seq}",
                )
        times = [d.time_s for d in decisions]
        if any(b < a for a, b in zip(times, times[1:])):
            raise InvariantViolation(
                "decision-log", "decision timestamps are not non-decreasing"
            )
        return self._passed("decision-log")


# ----------------------------------------------------------------------
# The durable serve loop
# ----------------------------------------------------------------------


@dataclass
class DurableServeResult:
    """Outcome of one :func:`serve_durable` run."""

    report: "ServeReport"
    recovery: Optional[RecoveryReport]
    gate: GateStats
    journal_records: int
    checkpoints_written: int
    invariants: Dict[str, int] = field(default_factory=dict)


def serve_durable(
    runtime: "OnlineRuntime",
    envelopes: Iterable[Envelope],
    duration_s: float,
    journal_path: str,
    *,
    checkpoint_interval: int = 16,
    fsync_interval: int = 8,
    holdback: int = 64,
    dedup_window: int = 256,
    monitor: bool = True,
    check_screen: bool = True,
    restore: bool = False,
    simulate: bool = False,
    record_trace: bool = False,
    crash_at: Optional[int] = None,
) -> DurableServeResult:
    """Serve an envelope stream with journaling, checkpoints and recovery.

    With ``restore=True`` the controller is first rebuilt from
    ``journal_path`` (checkpoint + intent replay); the gate then absorbs
    re-delivered envelopes the journal already covers, so callers can
    simply re-offer the *entire* stream after a crash.  ``crash_at=k``
    raises :class:`InjectedCrash` right after intent ``k`` is journaled
    and before the controller mutates — the chaos harness's crash hook.

    The :class:`InvariantMonitor` runs inline after every decision when
    ``monitor`` is set and its violations propagate (fail-loud).
    """
    if checkpoint_interval < 1:
        raise ValueError(
            f"checkpoint_interval must be >= 1, got {checkpoint_interval}"
        )
    recovery: Optional[RecoveryReport] = None
    if restore:
        controller, journal, recovery = recover(
            journal_path, runtime.controller, fsync_interval=fsync_interval
        )
    else:
        controller = runtime.controller()
        journal = DecisionJournal.create(
            journal_path, controller.config_echo(), fsync_interval=fsync_interval
        )
    mon = (
        InvariantMonitor(controller, check_screen=check_screen)
        if monitor
        else None
    )
    gate = IngressGate(
        holdback=holdback,
        dedup_window=dedup_window,
        next_seq=len(controller.decisions),
    )
    checkpoints = 0
    cycles_of = runtime.platform.mcu.seconds_to_cycles
    try:
        for envelope in envelopes:
            for request in gate.offer(envelope):
                seq = len(controller.decisions)
                journal.append_intent(seq, request)
                if crash_at is not None and seq >= crash_at:
                    raise InjectedCrash(seq)
                decision = controller.handle(request)
                journal.append_commit(decision.seq, decision.to_dict())
                if mon is not None:
                    mon.check(cycles_of(request.time_s))
                done = len(controller.decisions)
                if done % checkpoint_interval == 0:
                    journal.append_checkpoint(done, controller.snapshot())
                    checkpoints += 1
    finally:
        journal.close()
    report = runtime.report(
        controller, duration_s, simulate=simulate, record_trace=record_trace
    )
    return DurableServeResult(
        report=report,
        recovery=recovery,
        gate=gate.stats,
        journal_records=journal.records_written,
        checkpoints_written=checkpoints,
        invariants=dict(mon.counts) if mon is not None else {},
    )


def serve_trace_durable(
    runtime: "OnlineRuntime",
    trace: "RequestTrace",
    journal_path: str,
    **kwargs,
) -> DurableServeResult:
    """:func:`serve_durable` over a trace's canonical envelope stream."""
    return serve_durable(
        runtime,
        envelope_stream(trace),
        trace.duration_s,
        journal_path,
        **kwargs,
    )
