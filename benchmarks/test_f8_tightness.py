"""Benchmark for EXP-F8: analysis tightness (observed / bound)."""

from conftest import bench_experiment


def test_f8_tightness(benchmark):
    result = bench_experiment(benchmark, "EXP-F8", n_sets=8)
    for row in result.rows:
        method, samples, p50, p90, worst = row
        if worst is not None:
            assert worst <= 1.0, f"{method} bound violated: max ratio {worst}"
