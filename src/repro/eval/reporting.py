"""Plain-text rendering of experiment results (paper-style tables/series)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class ExperimentResult:
    """Structured output of one experiment driver.

    Attributes:
        exp_id: Experiment key (e.g. ``"EXP-F4"``).
        title: Human-readable title.
        columns: Column headers.
        rows: Data rows (mixed str/int/float; None renders as ``-``).
        notes: Methodology note printed under the table.
        meta: Machine-readable extras for the benchmark suite summary
            (e.g. decision-latency statistics).  Unlike ``rows``, meta
            may hold wall-clock measurements and is therefore excluded
            from determinism comparisons.
    """

    exp_id: str
    title: str
    columns: Tuple[str, ...]
    rows: Tuple[Tuple, ...]
    notes: str = ""
    meta: Dict = field(default_factory=dict)

    def column(self, name: str) -> List:
        """Extract one column by header name."""
        index = self.columns.index(name)
        return [row[index] for row in self.rows]


def _fmt(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    if isinstance(value, int) and abs(value) >= 100000:
        return f"{value:,}"
    return str(value)


def render(result: ExperimentResult) -> str:
    """Render a result as an aligned plain-text table."""
    table: List[List[str]] = [list(result.columns)]
    for row in result.rows:
        table.append([_fmt(v) for v in row])
    widths = [max(len(line[i]) for line in table) for i in range(len(result.columns))]
    lines = [f"== {result.exp_id}: {result.title} =="]
    header = "  ".join(h.ljust(widths[i]) for i, h in enumerate(table[0]))
    lines.append(header)
    lines.append("-" * len(header))
    for row in table[1:]:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    if result.notes:
        lines.append(f"note: {result.notes}")
    return "\n".join(lines)
