"""Benchmark for EXP-F3 (see DESIGN.md section 4)."""

from conftest import bench_experiment


def test_f3_single_dnn_latency(benchmark):
    bench_experiment(benchmark, "EXP-F3")
