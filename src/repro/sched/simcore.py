"""Struct-of-arrays simulator core: flat event engine, bit-identical.

The scalar :class:`~repro.sched.simulator.Simulator` dispatches every
event through Python-object machinery: a ``_Job`` dataclass per released
job, method calls per event, tuple keys per scheduling decision.  A
sweep pays that overhead tens of millions of times.  This module runs
the *same* discrete-event semantics on flat state:

Layout
    Per-task decision state lives in dense columns indexed by task
    position — plain Python ``int`` lists (faster than numpy item access
    for a serialized decision core of a handful of tasks): head-job
    progress counters (``loads done`` / ``computes done`` / banked
    remaining burst), release/deadline/arbitration scalars, and one
    ring (deque of release times) per task for the FIFO job backlog.
    Only the head of a ring carries progress — per-task FIFO semantics
    mean followers are fully described by their release time.  Bulk
    output (per-task response accumulators) and steady-state fold
    replay live in a preallocated ``int64`` numpy arena
    (:class:`Arena`) that is reused across runs — zero buffer
    allocations after warmup.  Segment columns (load/compute cycles,
    zero-load flags, suffix sums) are cached per segment tuple.

Event engine
    The heap holds 5-int tuples ``(time, seq, kind, pos, aux)`` —
    no job objects, no payload tuples.  ``seq`` replicates the scalar
    push order exactly, so pop order (and therefore every tie-break)
    is identical.  Dispatch, the zero-load advance, and both
    scheduling passes are fused into one inline loop: no method calls,
    no key tuples (priority comparisons are chained int compares), no
    trace or fault branches.

Frontier batching / fast-forward
    Like the scalar loop, all events at one timestamp drain before a
    scheduling pass.  On top of that the engine *fast-forwards* the
    head job of the lone live task — or, with backlog elsewhere, of the
    running task while every rival is provably frozen (cannot start a
    transfer, loses the CPU tie-break, and the chain keeps the CPU
    busy) — with the closed-form pipeline recurrence

        ``load_done[j]  = max(load_done[j-1], comp_done[j-B]) + L[j]``
        ``comp_done[j]  = max(comp_done[j-1], load_done[j]) + C[j]``

    instead of stepping each DMA/CPU completion through the heap.  The
    chain is only trusted up to an *interference bound*: the earliest
    pending release (tracked incrementally), the fold boundary, the
    hard cap, any live deadline event, and — under dominance — the
    first instant the CPU would idle.  A chain that finishes inside
    the bound retires the whole job in one commit; otherwise the
    prefix strictly before the bound is committed and the transfer or
    burst crossing it is reconstructed in flight (same dispatch order,
    so heap tie-breaks are preserved).  Either way the result is
    event-for-event identical to the stepped path.

Stand-down
    The core models exactly the fold-eligible feature set of PR 5 plus
    deadline aborts: no traces, no ``abort_on_miss``, no sporadic
    arrivals, no fault injection/escalation/recovery, no ``DEGRADE``,
    single DMA channel.  Anything else raises :class:`StandDown` and
    the caller falls back to the scalar path (counted in
    ``sim_stand_downs``).  ``REPRO_VEC_SIM=0`` is the global kill
    switch.  Steady-state folding (``REPRO_SIM_FOLD``) composes: the
    SoA engine replicates the scalar boundary fingerprint canonically,
    so fold decisions — and the fold telemetry — are bit-identical.

Telemetry rides the plan-cache counter protocol as the ``"sim.soa"``
pseudo-entry (:func:`repro.core.segcache.snapshot`): ``sim_soa_runs``
accepted runs, ``sim_soa_events`` scalar-equivalent events retired
(popped plus fused), ``sim_stand_downs`` scalar fallbacks.  Wall-clock
split between packing, event advance, and unpacking accumulates in
:func:`profile` for ``rtmdm simulate --profile``.
"""

from __future__ import annotations

import heapq
import os
import time as _walltime
from collections import deque
from typing import Dict, List, Optional, Tuple

try:  # pragma: no cover - exercised only on minimal installs
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

from repro.hw.dma import DmaArbitration
from repro.robust.overload import OverrunPolicy
from repro.sched import simulator as _sim
from repro.sched.simulator import (
    _FOLD_OFF,
    _FOLD_PROBE_LIMIT,
    SharedSetup,
    SimConfig,
    SimResult,
    TaskStats,
    _capped_lcm,
    fold_enabled,
)
from repro.sched.task import PeriodicTask, TaskSet

#: Environment kill switch: set to ``0`` to force the scalar simulator.
ENV_VAR = "REPRO_VEC_SIM"

#: Segment-column cache bound (entries are tiny; this only guards
#: pathological churn through millions of distinct segmentations).
_SEGCOL_CAP = 512


class StandDown(Exception):
    """The SoA core cannot run this config exactly; use the scalar path."""


#: Sentinel "never retry" horizon for the fast-forward failure memo.
_FF_INF = 1 << 62


#: Debug/benchmark hook: disable the lone-task fast-forward (the engine
#: then steps every event through the heap; results are identical).
_FAST_FORWARD = True


def available() -> bool:
    """Whether numpy is importable (the arena's only dependency)."""
    return _np is not None


def enabled() -> bool:
    """Whether the SoA path is active (numpy + kill switch)."""
    return _np is not None and os.environ.get(ENV_VAR, "1").strip() != "0"


# ----------------------------------------------------------------------
# Telemetry: counters ride the segcache snapshot/delta/absorb protocol
# (pseudo-entry "sim.soa"); times accumulate for the CLI profile.
# ----------------------------------------------------------------------

_counters = {"sim_soa_runs": 0, "sim_soa_events": 0, "sim_stand_downs": 0}

_PROFILE = {"pack_s": 0.0, "advance_s": 0.0, "unpack_s": 0.0}



def soa_counters() -> Dict[str, int]:
    """Process-wide SoA engine counters."""
    return dict(_counters)


def soa_snapshot() -> Tuple[int, int, int]:
    """Counter values for later :func:`soa_delta_since`."""
    c = _counters
    return (c["sim_soa_runs"], c["sim_soa_events"], c["sim_stand_downs"])


def soa_delta_since(before: Tuple[int, int, int]) -> Tuple[int, int, int]:
    """Counter increments since a :func:`soa_snapshot`."""
    now = soa_snapshot()
    return tuple(n - b for n, b in zip(now, before))  # type: ignore[return-value]


def soa_absorb(delta: Tuple[int, ...]) -> None:
    """Fold a worker process's counter delta into this process's totals."""
    for key, inc in zip(
        ("sim_soa_runs", "sim_soa_events", "sim_stand_downs"), delta
    ):
        _counters[key] += inc


def profile() -> Dict[str, float]:
    """Accumulated pack/advance/unpack wall-clock split (seconds)."""
    return dict(_PROFILE)


def reset_profile() -> None:
    """Zero the pack/advance/unpack accumulators."""
    for key in _PROFILE:
        _PROFILE[key] = 0.0


# ----------------------------------------------------------------------
# Arena: preallocated buffers reused across runs
# ----------------------------------------------------------------------


class Arena:
    """Reusable SoA buffers: response accumulator + segment columns.

    The response accumulator is one flat ``int64`` array sliced into
    per-task regions per run (capacity = the release-count bound, so
    fold replay always fits); it grows geometrically and never
    shrinks, so a warmed-up batch allocates nothing.  Segment columns
    — load/compute cycle lists, the zero-load flag, the nonzero-load
    suffix count and the compute-cycle suffix sum used by the
    fast-forward guard — are memoized per segment tuple (pinned by
    strong reference, so ``id`` reuse cannot alias).
    """

    __slots__ = ("_resp", "_segcols")

    def __init__(self) -> None:
        self._resp = _np.empty(1024, dtype=_np.int64) if _np is not None else None
        self._segcols: Dict[int, Tuple] = {}

    def resp_buffer(self, total: int):
        """A flat int64 buffer with capacity >= ``total``."""
        buf = self._resp
        if buf is None or len(buf) < total:
            cap = 1024 if buf is None else len(buf)
            while cap < total:
                cap *= 2
            buf = _np.empty(cap, dtype=_np.int64)
            self._resp = buf
        return buf

    def seg_columns(self, task: PeriodicTask) -> Tuple:
        """``(segments, loads, comps, nz_sfx, comp_sfx, load_sfx, has_zero)``.

        ``nz_sfx[j]`` counts nonzero loads in ``segments[j:]`` (the
        DMA completions a fast-forward fuses); ``comp_sfx[j]`` and
        ``load_sfx[j]`` sum compute/load cycles of ``segments[j:]``
        (lower bounds on remaining engine work, used to reject doomed
        fast-forward attempts without computing the chain).
        """
        segs = task.segments
        cols = self._segcols.get(id(segs))
        if cols is None:
            loads = [s.load_cycles for s in segs]
            comps = [s.compute_cycles for s in segs]
            n = len(segs)
            nz_suffix = [0] * (n + 1)
            comp_suffix = [0] * (n + 1)
            load_suffix = [0] * (n + 1)
            for j in range(n - 1, -1, -1):
                nz_suffix[j] = nz_suffix[j + 1] + (1 if loads[j] > 0 else 0)
                comp_suffix[j] = comp_suffix[j + 1] + comps[j]
                load_suffix[j] = load_suffix[j + 1] + loads[j]
            cols = (
                segs, loads, comps, nz_suffix, comp_suffix, load_suffix,
                0 in loads,
            )
            if len(self._segcols) >= _SEGCOL_CAP:
                self._segcols.clear()
            self._segcols[id(segs)] = cols
        return cols


_default_arena: Optional[Arena] = None


def default_arena() -> Arena:
    """The process-wide arena used when the caller does not supply one."""
    global _default_arena
    if _default_arena is None:
        _default_arena = Arena()
    return _default_arena


# ----------------------------------------------------------------------
# Eligibility
# ----------------------------------------------------------------------


def _check_supported(config: SimConfig) -> None:
    """Raise :class:`StandDown` for features the SoA core does not model.

    Mirrors the fold-eligibility rules (traces, abort_on_miss,
    sporadic arrivals, faults/escalation — and therefore recovery,
    which is inert without a fault source — and DEGRADE), plus the
    multi-channel DMA configuration the flat engine does not model.
    """
    if config.record_trace:
        raise StandDown("record_trace")
    if config.abort_on_miss:
        raise StandDown("abort_on_miss")
    if config.sporadic_slack != 0:
        raise StandDown("sporadic arrivals")
    if config.faults is not None and not config.faults.is_null:
        raise StandDown("fault injection")
    if config.escalation is not None and not config.escalation.is_null:
        raise StandDown("fault escalation")
    if config.overrun is OverrunPolicy.DEGRADE:
        raise StandDown("DEGRADE overrun")
    if config.dma_channels != 1:
        raise StandDown("multi-channel DMA")


def try_simulate(
    taskset: TaskSet,
    config: SimConfig,
    shared: Optional[SharedSetup] = None,
    arena: Optional[Arena] = None,
) -> Optional[SimResult]:
    """Run ``taskset`` on the SoA core, or ``None`` to use the scalar path.

    Returns ``None`` (without counting a stand-down) when the engine is
    disabled or the inputs would make the scalar constructor raise —
    error behavior stays with the scalar path.  Unsupported feature
    configs count one ``sim_stand_downs`` and return ``None``.
    """
    if not enabled():
        return None
    if config.horizon <= 0 or len(taskset) == 0:
        return None  # scalar path raises the canonical error
    try:
        _check_supported(config)
    except StandDown:
        _counters["sim_stand_downs"] += 1
        return None
    return _run(taskset, config, shared, arena if arena is not None else default_arena())


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------


def _run(
    taskset: TaskSet,
    config: SimConfig,
    shared: Optional[SharedSetup],
    arena: Arena,
) -> SimResult:
    t_pack = _walltime.perf_counter()

    tasks: Tuple[PeriodicTask, ...] = tuple(taskset)
    n = len(tasks)
    horizon = config.horizon

    periods = [t.period for t in tasks]
    dls = [t.deadline for t in tasks]
    prios = [t.priority for t in tasks]
    phases = [t.phase for t in tasks]
    bufs = [t.buffers for t in tasks]

    loads: List[List[int]] = []
    comps: List[List[int]] = []
    nzsuf: List[List[int]] = []
    csuf: List[List[int]] = []
    lsuf: List[List[int]] = []
    nseg: List[int] = []
    zero_list: List[int] = []
    all_zero: List[bool] = []
    for p, t in enumerate(tasks):
        _, lp, cp, nz, cs, ls, hz = arena.seg_columns(t)
        loads.append(lp)
        comps.append(cp)
        nzsuf.append(nz)
        csuf.append(cs)
        lsuf.append(ls)
        nseg.append(len(lp))
        all_zero.append(nz[0] == 0)
        if hz:
            zero_list.append(p)
    # With no nonzero load anywhere (XIP-style placements) the DMA
    # pass can never dispatch: skip it wholesale.
    has_dma = any(nzsuf[p2][0] > 0 for p2 in range(n))

    max_period = shared.max_period if shared is not None else max(periods)
    hard_cap = int(horizon * config.hard_cap_factor) + max_period

    # Response-accumulator regions: capacity = releases before horizon
    # (folded replays correspond to suppressed in-horizon releases, so
    # the bound holds with folding too).
    off = [0] * (n + 1)
    for p in range(n):
        cap = 0
        if phases[p] < horizon:
            cap = 1 + (horizon - 1 - phases[p]) // periods[p]
        off[p + 1] = off[p] + cap
    resp = arena.resp_buffer(off[n])

    deadline_driven = config.policy.deadline_driven
    preemptive = config.policy.preemptive
    fifo = config.dma_arbitration is DmaArbitration.FIFO
    abort_policy = config.overrun is OverrunPolicy.ABORT_AT_DEADLINE
    skip_policy = config.overrun is OverrunPolicy.SKIP_NEXT

    # ----- steady-state folding (same eligibility arithmetic as scalar)
    fold_period = 0
    fold_boundary = _FOLD_OFF
    if fold_enabled():
        h = shared.hyperperiod if shared is not None else _capped_lcm(periods)
        if h is not None and 2 * h <= horizon:
            fold_period = h
            fold_boundary = h
    fold_states: Dict[Tuple, Tuple[int, Tuple]] = {}
    fold_probes = 0
    fold_cycles = 0
    fold_jobs_skipped = 0
    folds = 0

    # ----- flat run state ---------------------------------------------
    q: List[deque] = [deque() for _ in range(n)]  # release times, head first
    h_ld = [0] * n      # head: loads done (== scalar loads_issued/loads_done)
    h_cd = [0] * n      # head: computes done
    h_rem = [-1] * n    # head: banked remaining burst (-1 = None)
    h_since = [-1] * n  # head: load_eligible_since (-1 = None)
    h_rel = [0] * n     # head: release time
    h_dl = [0] * n      # head: absolute deadline
    head_idx = [0] * n  # job index of the head (deadline-event matching)
    skip = [False] * n
    resp_n = [0] * n
    misses = [0] * n
    aborts = [0] * n
    skips = [0] * n

    cpu_task = -1
    cpu_start = 0
    cpu_token = 0
    cpu_busy = 0
    ch_task = -1        # task pos transferring on the (single) DMA channel
    ch_aborted = False  # transfer owner was deadline-aborted; drain + discard
    ch_end = 0
    dma_busy = 0

    heap: List[Tuple[int, int, int, int, int]] = []
    seq = 0
    next_rel = [_FF_INF] * n  # pending release time per task (INF: none)
    for p in range(n):
        if phases[p] < horizon:
            heap.append((phases[p], seq, 0, p, 0))  # _RELEASE
            seq += 1
            next_rel[p] = phases[p]
    heapq.heapify(heap)

    active = 0              # tasks with nonempty backlog
    release_suppressed = False
    truncated = False
    events = 0              # scalar-equivalent events retired
    time_now = 0

    pop = heapq.heappop
    push = heapq.heappush
    ff_on = _FAST_FORWARD
    # Fast-forward failure memo (per task): a fruitless attempt stays
    # fruitless while the same head job is in place AND simulated time
    # has not reached the interference bound it was clipped at, so the
    # O(segments) chain is recomputed a handful of times per job
    # instead of once per event.
    ff_idx = [-1] * n
    ff_until = [0] * n

    # Static priority order enables early-exit candidate scans for the
    # fixed-priority policies: the first ready task in ``prio_order``
    # wins outright unless a later task ties its priority value (then
    # release time, then position — already the iteration order).
    prio_order = sorted(range(n), key=lambda p_: (prios[p_], p_))
    # ``h_since`` only influences results through FIFO arbitration and
    # fold fingerprints; when neither can observe it, the DMA scan can
    # early-exit instead of marking every eligible candidate.
    since_free = not fifo and fold_period == 0

    # ----- fold machinery (closures; off the hot path) ----------------

    def _stats_mark() -> Tuple:
        return (
            tuple(resp_n),
            tuple(misses),
            tuple(aborts),
            tuple(skips),
            cpu_busy,
            dma_busy,
        )

    def _fingerprint(boundary: int) -> Tuple:
        # Canonically equivalent to Simulator._fingerprint: same state
        # components, same discrimination power, so fold decisions (and
        # telemetry) match the scalar run bit for bit.
        queues = []
        for p in range(n):
            qp = q[p]
            if not qp:
                queues.append(())
                continue
            dlp = dls[p]
            entries = [
                (
                    h_ld[p],
                    h_ld[p],
                    h_cd[p],
                    h_rem[p] if h_rem[p] >= 0 else None,
                    h_rel[p] - boundary,
                    h_dl[p] - boundary,
                    h_since[p] - boundary if h_since[p] >= 0 else None,
                )
            ]
            first = True
            for rel in qp:
                if first:
                    first = False
                    continue
                entries.append(
                    (0, 0, 0, None, rel - boundary, rel + dlp - boundary, None)
                )
            queues.append(tuple(entries))
        cpu = None if cpu_task < 0 else (cpu_task, cpu_start - boundary)
        dma = () if ch_task < 0 else ((0, -1 if ch_aborted else ch_task),)
        entries2 = []
        for t, s, k, p3, aux in sorted(heap):
            if k == 0:  # _RELEASE
                canon: Tuple = (p3,)
            elif k == 1:  # _DMA_DONE
                canon = (0, -1 if ch_aborted else ch_task)
            elif k == 2:  # _CPU_DONE
                if aux == cpu_token and cpu_task == p3:
                    canon = (1, p3)
                else:
                    canon = (0,)  # stale: pops as a no-op
            else:  # _DEADLINE
                if q[p3] and aux >= head_idx[p3]:
                    canon = (p3, aux - head_idx[p3])
                else:
                    canon = (-1,)  # dead: pops as a no-op
            entries2.append((t - boundary, k, canon))
        return (tuple(queues), cpu, dma, tuple(entries2), tuple(skip))

    def _fold(previous: Tuple[int, Tuple], boundary: int) -> int:
        nonlocal cpu_busy, dma_busy, cpu_start, ch_end
        nonlocal folds, fold_cycles, fold_jobs_skipped
        start, mark = previous
        period = boundary - start
        limit = min(horizon, hard_cap)
        nf = (limit - max_period - boundary) // period
        if nf <= 0:
            return boundary + fold_period
        resp0, miss0, abort0, skip0, cpu0, dma0 = mark
        jobs_per_cycle = 0
        for p in range(n):
            cnt = resp_n[p] - resp0[p]
            if cnt:
                base = off[p]
                c1 = resp_n[p]
                assert base + c1 + nf * cnt <= off[p + 1], "fold overflow"
                seg = resp[base + resp0[p] : base + c1]
                resp[base + c1 : base + c1 + nf * cnt] = _np.tile(seg, nf)
                resp_n[p] = c1 + nf * cnt
            da = aborts[p] - abort0[p]
            sk = skips[p] - skip0[p]
            misses[p] += nf * (misses[p] - miss0[p])
            aborts[p] += nf * da
            skips[p] += nf * sk
            jobs_per_cycle += cnt + da + sk
        cpu_busy += nf * (cpu_busy - cpu0)
        dma_busy += nf * (dma_busy - dma0)
        shift = nf * period
        for p in range(n):
            if q[p]:
                q[p] = deque(x + shift for x in q[p])
                h_rel[p] += shift
                h_dl[p] += shift
                if h_since[p] >= 0:
                    h_since[p] += shift
        if cpu_task >= 0:
            cpu_start += shift
        if ch_task >= 0:
            ch_end += shift
        for p3 in range(n):
            if next_rel[p3] != _FF_INF:
                next_rel[p3] += shift
            ff_idx[p3] = -1  # job indices rebased: drop the memo
        # Uniform shift preserves heap order (seq breaks remaining ties).
        heap[:] = [(t + shift, s, k, p3, a) for t, s, k, p3, a in heap]
        folds += 1
        fold_cycles += nf
        fold_jobs_skipped += nf * jobs_per_cycle
        return _FOLD_OFF

    def _at_boundary(boundary: int) -> int:
        nonlocal fold_probes
        if release_suppressed:
            return _FOLD_OFF
        fold_probes += 1
        if fold_probes > _FOLD_PROBE_LIMIT:
            return _FOLD_OFF
        fp = _fingerprint(boundary)
        prev = fold_states.get(fp)
        if prev is None:
            fold_states[fp] = (boundary, _stats_mark())
            return boundary + fold_period
        return _fold(prev, boundary)

    # ----- main loop ---------------------------------------------------
    _PROFILE["pack_s"] += _walltime.perf_counter() - t_pack
    t_adv = _walltime.perf_counter()

    while heap:
        if heap[0][0] >= fold_boundary:
            fold_boundary = _at_boundary(fold_boundary)
            continue
        ev = pop(heap)
        time_now = ev[0]
        if time_now > hard_cap:
            truncated = True
            break
        changed = False
        while True:
            events += 1
            kind = ev[2]
            p = ev[3]
            if kind == 2:  # _CPU_DONE (aux = token)
                if ev[4] == cpu_token and cpu_task == p:
                    cpu_busy += time_now - cpu_start
                    cpu_task = -1
                    cpu_token += 1
                    h_rem[p] = -1
                    cd = h_cd[p] + 1
                    h_cd[p] = cd
                    if cd == nseg[p]:
                        # complete the head job
                        resp[off[p] + resp_n[p]] = time_now - h_rel[p]
                        resp_n[p] += 1
                        if time_now > h_dl[p]:
                            misses[p] += 1
                            if skip_policy:
                                skip[p] = True
                        qp = q[p]
                        qp.popleft()
                        head_idx[p] += 1
                        if qp:
                            rel = qp[0]
                            h_rel[p] = rel
                            h_dl[p] = rel + dls[p]
                            h_ld[p] = 0
                            h_cd[p] = 0
                            h_rem[p] = -1
                            h_since[p] = -1
                        else:
                            active -= 1
                    changed = True
            elif kind == 1:  # _DMA_DONE (single channel)
                p = ch_task
                ch_task = -1
                if ch_aborted:
                    ch_aborted = False  # drained; data discarded
                else:
                    h_ld[p] += 1
                changed = True
            elif kind == 0:  # _RELEASE (aux = job index)
                idx = ev[4]
                if skip[p]:
                    skip[p] = False
                    skips[p] += 1
                else:
                    qp = q[p]
                    if not qp:
                        qp.append(time_now)
                        head_idx[p] = idx
                        h_rel[p] = time_now
                        h_dl[p] = time_now + dls[p]
                        h_ld[p] = 0
                        h_cd[p] = 0
                        h_rem[p] = -1
                        h_since[p] = -1
                        active += 1
                        changed = True  # a new head is scheduler-visible
                    else:
                        qp.append(time_now)
                    if abort_policy:
                        push(heap, (time_now + dls[p], seq, 3, p, idx))
                        seq += 1
                nt = time_now + periods[p]
                if nt < horizon:
                    push(heap, (nt, seq, 0, p, idx + 1))
                    seq += 1
                    next_rel[p] = nt
                else:
                    release_suppressed = True
                    next_rel[p] = _FF_INF
            else:  # _DEADLINE (aux = job index)
                qp = q[p]
                if qp and ev[4] == head_idx[p]:
                    # Grace: the final burst completes at this instant.
                    if not (
                        cpu_task == p
                        and h_rem[p] >= 0
                        and cpu_start + h_rem[p] == time_now
                        and h_cd[p] + 1 == nseg[p]
                    ):
                        if cpu_task == p:
                            elapsed = time_now - cpu_start
                            if elapsed > 0:
                                cpu_busy += elapsed
                            h_rem[p] -= elapsed
                            cpu_task = -1
                            cpu_token += 1
                        aborts[p] += 1
                        if ch_task == p:
                            ch_aborted = True  # transfer drains
                        qp.popleft()
                        head_idx[p] += 1
                        if qp:
                            rel = qp[0]
                            h_rel[p] = rel
                            h_dl[p] = rel + dls[p]
                            h_ld[p] = 0
                            h_cd[p] = 0
                            h_rem[p] = -1
                            h_since[p] = -1
                        else:
                            active -= 1
                        changed = True
            # Drain simultaneous events before scheduling decisions.
            if heap and heap[0][0] == time_now:
                ev = pop(heap)
            else:
                break
        if not changed:
            continue
        # ----- scheduling passes (+ fast-forward) ---------------------
        while True:
            # Zero-cycle loads complete instantly (no DMA involvement).
            for p in zero_list:
                if q[p]:
                    ld = h_ld[p]
                    cd = h_cd[p]
                    ns = nseg[p]
                    if all_zero[p]:
                        # Every load is zero: the window fills outright.
                        adv = cd + bufs[p]
                        if adv > ns:
                            adv = ns
                    else:
                        b = bufs[p]
                        lp = loads[p]
                        adv = ld
                        while adv < ns and adv - cd < b and lp[adv] == 0:
                            adv += 1
                    if adv != ld:
                        h_ld[p] = adv
                        h_since[p] = -1
            # DMA pass (single channel).
            if has_dma and ch_task < 0:
                best = -1
                if fifo:
                    b0 = b1 = 0
                    for p in range(n):
                        if not q[p]:
                            continue
                        ld = h_ld[p]
                        if ld >= nseg[p] or ld - h_cd[p] >= bufs[p]:
                            continue
                        s = h_since[p]
                        if s < 0:
                            s = time_now
                            h_since[p] = s
                        r = h_rel[p]
                        if best < 0 or s < b0 or (s == b0 and r < b1):
                            best = p
                            b0 = s
                            b1 = r
                elif deadline_driven:
                    b0 = b1 = b2 = 0
                    for p in range(n):
                        if not q[p]:
                            continue
                        ld = h_ld[p]
                        if ld >= nseg[p] or ld - h_cd[p] >= bufs[p]:
                            continue
                        if h_since[p] < 0:
                            h_since[p] = time_now
                        d = h_dl[p]
                        pr = prios[p]
                        r = h_rel[p]
                        if (
                            best < 0
                            or d < b0
                            or (d == b0 and (pr < b1 or (pr == b1 and r < b2)))
                        ):
                            best = p
                            b0 = d
                            b1 = pr
                            b2 = r
                elif since_free:
                    # Priority arbitration with ``h_since`` unobservable:
                    # scan in static priority order and stop at the first
                    # resolved priority group.
                    b0 = b1 = 0
                    for p in prio_order:
                        if not q[p]:
                            continue
                        ld = h_ld[p]
                        if ld >= nseg[p] or ld - h_cd[p] >= bufs[p]:
                            continue
                        if best < 0:
                            best = p
                            b0 = prios[p]
                            b1 = h_rel[p]
                        elif prios[p] != b0:
                            break
                        elif h_rel[p] < b1:
                            best = p
                            b1 = h_rel[p]
                else:
                    b0 = b1 = 0
                    for p in range(n):
                        if not q[p]:
                            continue
                        ld = h_ld[p]
                        if ld >= nseg[p] or ld - h_cd[p] >= bufs[p]:
                            continue
                        if h_since[p] < 0:
                            h_since[p] = time_now
                        pr = prios[p]
                        r = h_rel[p]
                        if best < 0 or pr < b0 or (pr == b0 and r < b1):
                            best = p
                            b0 = pr
                            b1 = r
                if best >= 0:
                    cyc = loads[best][h_ld[best]]
                    ch_task = best
                    ch_aborted = False
                    ch_end = time_now + cyc
                    h_since[best] = -1
                    dma_busy += cyc
                    push(heap, (ch_end, seq, 1, 0, 0))
                    seq += 1
            # CPU pass.
            if cpu_task < 0 or preemptive:
                best = -1
                if deadline_driven:
                    b0 = b1 = b2 = 0
                    for p in range(n):
                        if q[p] and h_cd[p] < h_ld[p]:
                            d = h_dl[p]
                            pr = prios[p]
                            r = h_rel[p]
                            if (
                                best < 0
                                or d < b0
                                or (
                                    d == b0
                                    and (pr < b1 or (pr == b1 and r < b2))
                                )
                            ):
                                best = p
                                b0 = d
                                b1 = pr
                                b2 = r
                else:
                    # Static priorities: early-exit once the winning
                    # priority group is resolved (no scan side effects).
                    b0 = b1 = 0
                    for p in prio_order:
                        if q[p] and h_cd[p] < h_ld[p]:
                            if best < 0:
                                best = p
                                b0 = prios[p]
                                b1 = h_rel[p]
                            elif prios[p] != b0:
                                break
                            elif h_rel[p] < b1:
                                best = p
                                b1 = h_rel[p]
                if best >= 0:
                    start_best = False
                    if cpu_task < 0:
                        start_best = True
                    elif best != cpu_task:
                        # best_key < run_key? (pos breaks exact ties, and
                        # best != cpu_task here, so strict compares apply)
                        c = cpu_task
                        if deadline_driven:
                            preempt = b0 < h_dl[c] or (
                                b0 == h_dl[c]
                                and (
                                    b1 < prios[c]
                                    or (
                                        b1 == prios[c]
                                        and (
                                            b2 < h_rel[c]
                                            or (b2 == h_rel[c] and best < c)
                                        )
                                    )
                                )
                            )
                        else:
                            preempt = b0 < prios[c] or (
                                b0 == prios[c]
                                and (
                                    b1 < h_rel[c]
                                    or (b1 == h_rel[c] and best < c)
                                )
                            )
                        if preempt:
                            elapsed = time_now - cpu_start
                            if elapsed > 0:
                                cpu_busy += elapsed
                            h_rem[c] -= elapsed
                            cpu_token += 1
                            start_best = True
                    if start_best:
                        rem = h_rem[best]
                        if rem < 0:
                            rem = comps[best][h_cd[best]]
                            h_rem[best] = rem
                        cpu_task = best
                        cpu_start = time_now
                        cpu_token += 1
                        push(heap, (time_now + rem, seq, 2, best, cpu_token))
                        seq += 1
            # ----- fast-forward: lone or dominant task ----------------
            if not ff_on or ch_aborted or active == 0:
                break
            if active == 1:
                p = 0
                while not q[p]:
                    p += 1
            else:
                p = cpu_task
                if p < 0:
                    break
            if ch_task >= 0 and ch_task != p:
                break
            cd0 = h_cd[p]
            ns = nseg[p]
            ld0 = h_ld[p]
            if ns - cd0 + nzsuf[p][ld0] < 4:
                break  # too few events fused to pay for a commit
            if ff_idx[p] == head_idx[p] and time_now < ff_until[p]:
                break  # this head already failed; bound not reached
            # Exclusive interference bound: the earliest pending release
            # (tracked incrementally, so no heap scan), the fold
            # boundary, the hard cap and — under ABORT — the earliest
            # live deadline event.  Chain events strictly before the
            # bound cannot interleave with foreign state changes.
            upto = next_rel[0]
            for q2 in range(1, n):
                if next_rel[q2] < upto:
                    upto = next_rel[q2]
            if fold_boundary < upto:
                upto = fold_boundary
            hc1 = hard_cap + 1
            if hc1 < upto:
                upto = hc1
            if abort_policy:
                for e in heap:
                    if (
                        e[2] == 3
                        and e[0] < upto
                        and q[e[3]]
                        and e[4] >= head_idx[e[3]]
                    ):
                        upto = e[0]
            pre_c = cpu_task == p
            ch_b = ch_task == p
            # Cheap reject: the next engine completion (one is in
            # flight whenever the head can progress) lands at or past
            # the bound, so nothing can commit.
            first_ev = cpu_start + h_rem[p] if pre_c else _FF_INF
            if ch_b and ch_end < first_ev:
                first_ev = ch_end
            if upto <= first_ev:
                ff_idx[p] = head_idx[p]
                ff_until[p] = upto
                break
            need_gapless = active > 1
            if (
                need_gapless
                and bufs[p] == 1
                and ld0 < ns
                and loads[p][ld0] > 0
            ):
                # Single-buffer under contention: the next (nonzero)
                # load cannot overlap the running burst, so the chain
                # gaps right at its end — nothing commits.
                ff_idx[p] = head_idx[p]
                ff_until[p] = first_ev
                break
            if need_gapless:
                # Dominant-task fusion: the running task's head job can
                # fuse even with other tasks backlogged, provided every
                # other live task (a) cannot start a transfer (buffers
                # full or loads done — its state is frozen while it
                # waits for the CPU), (b) loses the CPU tie-break to
                # ``p``, and (c) never sees an idle CPU (the chain
                # below is clipped at its first gap).
                dp = h_dl[p]
                rp = h_rel[p]
                pp = prios[p]
                ok = True
                for q2 in range(n):
                    if q2 == p or not q[q2]:
                        continue
                    if h_ld[q2] < nseg[q2] and h_ld[q2] - h_cd[q2] < bufs[q2]:
                        ok = False  # could claim the DMA channel
                        break
                    if deadline_driven:
                        d = h_dl[q2]
                        if d < dp or (
                            d == dp
                            and (
                                prios[q2] < pp
                                or (
                                    prios[q2] == pp
                                    and (
                                        h_rel[q2] < rp
                                        or (h_rel[q2] == rp and q2 < p)
                                    )
                                )
                            )
                        ):
                            ok = False  # beats p: takes the next burst
                            break
                    elif prios[q2] < pp or (
                        prios[q2] == pp
                        and (h_rel[q2] < rp or (h_rel[q2] == rp and q2 < p))
                    ):
                        ok = False  # beats p: takes the next burst
                        break
                if not ok:
                    break  # cheap check, and conditions drift: no memo
            lp = loads[p]
            cp = comps[p]
            b = bufs[p]
            # Pass 1: run the pipeline recurrence out to the bound.  A
            # CPU gap under dominance clips the bound instead of
            # failing — the prefix before the gap still commits.
            m = ns - cd0
            ld_list = [0] * m
            ct_list = [0] * m
            lt = ch_end if ch_b else 0
            ct_prev = 0
            j = cd0
            while j < ns:
                i = j - cd0
                if j < ld0:
                    ldone = 0  # already staged
                elif j == ld0 and ch_b:
                    ldone = ch_end  # in-flight transfer (already charged)
                else:
                    dep = j - b
                    st = ct_list[dep - cd0] if dep >= cd0 else 0
                    if lt > st:
                        st = lt
                    ldone = st + lp[j]
                    lt = ldone
                ld_list[i] = ldone
                if i == 0 and pre_c:
                    ct = cpu_start + h_rem[p]
                else:
                    if need_gapless and ldone > ct_prev:
                        # CPU idles: a rival burst fits after ct_prev.
                        if ct_prev < upto:
                            upto = ct_prev
                        ct_list[i] = _FF_INF
                        j += 1
                        break
                    ct = (ct_prev if ct_prev > ldone else ldone) + cp[j]
                ct_list[i] = ct
                ct_prev = ct
                j += 1
                if ldone >= upto and ct >= upto:
                    break
            n_chain = j - cd0
            if n_chain == m and ct_prev < upto:
                # ----- full commit: the whole head job fuses ----------
                finish = ct_prev
                while heap and heap[0][0] <= finish:
                    pop(heap)
                    events += 1
                virt = (
                    m
                    - (1 if pre_c else 0)
                    + nzsuf[p][ld0 + 1 if ch_b else ld0]
                )
                events += virt
                cpu_busy += (
                    h_rem[p] + csuf[p][cd0 + 1] if pre_c else csuf[p][cd0]
                )
                dma_busy += lsuf[p][ld0 + 1] if ch_b else lsuf[p][ld0]
                if pre_c:
                    cpu_token += 1
                    cpu_task = -1
                if ch_b:
                    ch_task = -1
                time_now = finish
                resp[off[p] + resp_n[p]] = finish - h_rel[p]
                resp_n[p] += 1
                if finish > h_dl[p]:
                    misses[p] += 1
                    if skip_policy:
                        skip[p] = True
                qp = q[p]
                qp.popleft()
                head_idx[p] += 1
                if qp:
                    rel = qp[0]
                    h_rel[p] = rel
                    h_dl[p] = rel + dls[p]
                    h_ld[p] = 0
                    h_cd[p] = 0
                    h_rem[p] = -1
                    h_since[p] = -1
                    # loop: schedule the new head at `finish`, maybe
                    # fast-forward again.
                else:
                    active -= 1
                    if active == 0:
                        break
                    # Other tasks still have backlog: rerun the passes
                    # at `finish` to dispatch the next winner.
                continue
            # ----- partial commit: fuse the prefix before the bound ---
            # Advance the head to its state just before ``upto`` and
            # leave the crossing transfer/burst in flight.  A mid-job
            # reconstruction cannot replay ``h_since`` marks, so it
            # needs them unobservable (no FIFO arbitration, folding
            # disarmed); otherwise fall back to the plain memo.
            if not since_free:
                ff_idx[p] = head_idx[p]
                ff_until[p] = upto
                break
            # Loads: count the committed prefix; a transfer dispatched
            # before the bound but completing at/after it stays in
            # flight (its cycles are charged at dispatch, as scalar).
            jl = ld0
            pre_l_com = False
            if ch_b:
                if ch_end >= upto:
                    jl = -1  # existing transfer still crosses the bound
                else:
                    pre_l_com = True
                    jl = ld0 + 1
            h_ld_new = jl if jl >= 0 else ld0
            ld_ev = 0
            dma_add = 0
            nl_t = -1
            nl_s = 0
            if jl >= 0:
                end_j = cd0 + n_chain
                while jl < end_j:
                    ldone = ld_list[jl - cd0]
                    cyc = lp[jl]
                    if ldone < upto:
                        h_ld_new = jl + 1
                        if cyc:
                            ld_ev += 1
                            dma_add += cyc
                        jl += 1
                    else:
                        if cyc and ldone - cyc < upto:
                            nl_t = ldone  # crossing transfer
                            nl_s = ldone - cyc
                            dma_add += cyc
                        break
            # Computes: committed prefix, plus the burst crossing the
            # bound when its dispatch precedes it.
            cd_n = 0
            cpu_add = 0
            pre_c_com = False
            nc_t = -1
            nc_s = 0
            jj = cd0
            end_j = cd0 + n_chain
            while jj < end_j:
                ct = ct_list[jj - cd0]
                if ct < upto:
                    cd_n += 1
                    if jj == cd0 and pre_c:
                        pre_c_com = True
                        cpu_add += h_rem[p]
                    else:
                        cpu_add += cp[jj]
                    jj += 1
                else:
                    if not (jj == cd0 and pre_c):
                        st = ct - cp[jj]
                        if st < upto:
                            nc_t = ct
                            nc_s = st
                    break
            if not (
                cd_n or ld_ev or pre_l_com or nl_t >= 0 or nc_t >= 0
                or h_ld_new != ld0
            ):
                ff_idx[p] = head_idx[p]
                ff_until[p] = upto
                break  # nothing completes before the bound: plain memo
            # Commit: retire everything strictly before the bound and
            # reconstruct both engines as of that instant.
            while heap and heap[0][0] < upto:
                pop(heap)
                events += 1
            # ``ld_ev`` already excludes the pre-existing transfer (the
            # loads walk starts past it); only the compute count needs
            # the pre-existing burst deducted.
            virt = cd_n + ld_ev - (1 if pre_c_com else 0)
            events += virt
            cpu_busy += cpu_add
            dma_busy += dma_add
            h_cd[p] = cd0 + cd_n
            h_ld[p] = h_ld_new
            # Push order replicates scalar dispatch order (earlier
            # start first; the DMA pass precedes the CPU pass on ties)
            # so equal-time pops keep their heap tie-break.
            push_l = nl_t >= 0
            if push_l and (nc_t < 0 or nl_s <= nc_s):
                ch_task = p
                ch_end = nl_t
                push(heap, (nl_t, seq, 1, 0, 0))
                seq += 1
                push_l = False
            if nc_t >= 0:
                cpu_token += 1
                cpu_task = p
                cpu_start = nc_s
                h_rem[p] = cp[cd0 + cd_n]
                push(heap, (nc_t, seq, 2, p, cpu_token))
                seq += 1
            elif pre_c_com:
                cpu_task = -1
                h_rem[p] = -1
            if push_l:
                ch_task = p
                ch_end = nl_t
                push(heap, (nl_t, seq, 1, 0, 0))
                seq += 1
            elif nl_t < 0 and pre_l_com:
                ch_task = -1
            ff_idx[p] = head_idx[p]
            ff_until[p] = upto  # the prefix is harvested up to here
            break

    _PROFILE["advance_s"] += _walltime.perf_counter() - t_adv
    t_unpack = _walltime.perf_counter()

    # ----- unpack ------------------------------------------------------
    stats: Dict[str, TaskStats] = {}
    for p, t in enumerate(tasks):
        st = TaskStats(name=t.name)
        st.responses = resp[off[p] : off[p] + resp_n[p]].tolist()
        st.misses = misses[p]
        st.unfinished = len(q[p])
        st.aborts = aborts[p]
        st.skips = skips[p]
        stats[t.name] = st

    counters = _sim._fold_counters
    counters["runs"] += 1
    if folds:
        counters["folds"] += folds
        counters["cycles_skipped"] += fold_cycles
        counters["jobs_skipped"] += fold_jobs_skipped
    _counters["sim_soa_runs"] += 1
    _counters["sim_soa_events"] += events

    result = SimResult(
        stats=stats,
        trace=None,
        cpu_busy=cpu_busy,
        dma_busy=dma_busy,
        end_time=time_now,
        aborted_on_miss=False,
        truncated=truncated,
        dma_retries=0,
        fold_cycles=fold_cycles,
        fold_jobs_skipped=fold_jobs_skipped,
    )
    _PROFILE["unpack_s"] += _walltime.perf_counter() - t_unpack
    return result
