"""Schedulability analyses for segmented tasks on CPU + DMA.

The execution model these analyses bound (and the simulator implements):

* CPU: segment-level non-preemptive fixed priority;
* DMA: non-preemptive transfers, priority arbitration;
* within a job, loads respect buffer depth and computes respect loads.

Three safe analyses are provided; ``rtmdm`` takes the per-task minimum of
the two tighter ones (the minimum of safe bounds is safe):

``oblivious`` (suspension-oblivious)
    The job's demand is the full serialized work ``sum(C) + sum(L)``; no
    credit for overlap.  The classic safe-but-pessimistic baseline.

``overlap`` (overlap-aware)
    The job's demand is its *isolated pipelined latency* — RT-MDM's own
    double-buffer overlap is credited.  Contention effects are covered by
    the interference and blocking terms:

    * higher-priority tasks inject ``C_j + L_j`` per job in the window
      (a CPU-busy and a DMA-busy cycle may coincide; counting both is
      pessimistic, never optimistic);
    * lower-priority tasks block non-preemptively at most once per
      segment boundary on the CPU (``n_seg * max_lp_compute``) and once
      per issued transfer on the DMA (``n_load * max_lp_load``).

``holistic`` (two-stage pipeline decomposition)
    The job finishes no later than "all loads complete under DMA
    contention" (``RL_i``) followed by "all computes run under CPU
    contention" (``RC_i``): ``R_i <= RL_i + RC_i``.  Higher-priority
    computes reach the CPU with release jitter up to their own ``RL_j``.

Release jitter of a higher-priority task is ``R_j - E_j`` (its demand can
bunch at the end of its response window), computed in priority order.

Every analysis is validated against the discrete-event simulator by the
property tests in ``tests/test_analysis_safety.py``: whenever an analysis
admits a task set, no simulated phasing may miss a deadline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.pipeline import isolated_latency
from repro.sched.rta import CACHE_MISS, FixpointCache
from repro.sched.task import PeriodicTask, TaskSet, inflate_compute, inflate_loads

#: Analysis method names accepted by :func:`analyze`.
METHODS = ("oblivious", "overlap", "holistic", "rtmdm")


@dataclass(frozen=True)
class AnalysisResult:
    """Outcome of one schedulability analysis over a task set.

    Attributes:
        method: Analysis method name.
        wcrt: Per-task worst-case response-time bound in cycles, or
            ``None`` when no bound at or below the deadline exists.
        deadlines: Per-task relative deadlines (for reports).
    """

    method: str
    wcrt: Dict[str, Optional[int]]
    deadlines: Dict[str, int]

    @property
    def schedulable(self) -> bool:
        """True iff every task has a bound within its deadline."""
        return all(
            bound is not None and bound <= self.deadlines[name]
            for name, bound in self.wcrt.items()
        )

    def margin(self, name: str) -> Optional[int]:
        """Deadline minus bound for one task (None when unbounded)."""
        bound = self.wcrt[name]
        return None if bound is None else self.deadlines[name] - bound


@dataclass(frozen=True)
class _View:
    """Pre-computed per-task quantities the analyses consume."""

    task: PeriodicTask
    total_c: int
    total_l: int
    n_seg: int
    n_load: int
    max_c: int
    max_l: int
    latency: int

    @classmethod
    def of(cls, task: PeriodicTask) -> "_View":
        return cls(
            task=task,
            total_c=task.total_compute,
            total_l=task.total_load,
            n_seg=task.num_segments,
            n_load=sum(1 for s in task.segments if s.load_cycles > 0),
            max_c=task.max_segment_compute,
            max_l=max((s.load_cycles for s in task.segments), default=0),
            latency=isolated_latency(task.segments, task.buffers),
        )


def _views_by_priority(taskset: TaskSet) -> List[_View]:
    """Views sorted highest priority first; priorities must be unique."""
    priorities = [t.priority for t in taskset]
    if len(set(priorities)) != len(priorities):
        raise ValueError(f"analyses need unique task priorities, got {priorities}")
    return [_View.of(t) for t in taskset.sorted_by_priority()]


def _fixpoint(
    own: int,
    blocking: int,
    interferers: Sequence[Tuple[int, int, int]],
    cap: int,
    cache: Optional[FixpointCache] = None,
    warm_key: Any = None,
) -> Optional[int]:
    """Solve ``R = own + blocking + sum ceil((R + J)/T) * I``.

    ``interferers`` are ``(demand, period, jitter)`` triples.  Returns
    None when the value exceeds ``cap`` (callers pass the deadline: a
    bound beyond it is useless and busy-window assumptions lapse).

    With a ``cache``, identical problems return the memoized solution
    (always sound: the result is a pure function of the arguments).
    With ``warm_key`` too, the iteration is seeded from the committed
    value staged under the same key by a *dominated* problem (pointwise
    no larger demand); monotone iteration from any value between the
    classic start and the least fixpoint converges to the same least
    fixpoint, so the result is bit-identical to a cold start.
    """
    if cache is not None:
        exact_key = (own, blocking, tuple(interferers), cap)
        hit = cache.get_exact(exact_key)
        if hit is not CACHE_MISS:
            if warm_key is not None and hit is not None:
                cache.stage(warm_key, hit)
            return hit
    start = own + blocking
    response = start
    if cache is not None and warm_key is not None:
        seed = cache.warm_start(warm_key)
        if seed is not None and seed > start:
            response = seed
    result: Optional[int]
    while True:
        demand = own + blocking
        for interference, period, jitter in interferers:
            demand += -((response + jitter) // -period) * interference  # ceil div
        if demand > cap:
            result = None
            break
        if demand == response:
            result = response
            break
        response = demand
    if cache is not None:
        cache.put_exact(exact_key, result)
        if warm_key is not None and result is not None:
            cache.stage(warm_key, result)
    return result


def _single_resource_analysis(
    views: List[_View],
    demand_of: Callable[[_View], int],
    interference_of: Callable[[_View], int],
    blocking_of: Callable[[_View, List[_View]], int],
    cache: Optional[FixpointCache] = None,
    warm_tag: Optional[str] = None,
) -> Dict[str, Optional[int]]:
    """Generic highest-priority-first fixpoint pass with jitter chaining.

    Warm-start soundness of the ``(warm_tag, index)`` keying: for each
    priority slot, ``own``, ``blocking``, and interference demands are
    monotone in a uniform WCET inflation, and the chained jitter
    ``bound - own`` is monotone too because the least fixpoint grows at
    least as fast as ``own`` (for a fixpoint ``p`` of the inflated
    recurrence, descending the old recurrence from ``p`` lands on a
    fixpoint at most ``p - delta_own``, so ``lfp_new >= lfp_old +
    delta_own``).  By induction in priority order every slot's problem
    dominates its predecessor across admitted inflation factors.
    """
    wcrt: Dict[str, Optional[int]] = {}
    jitters: List[int] = []
    for index, view in enumerate(views):
        higher = views[:index]
        lower = views[index + 1:]
        interferers = [
            (interference_of(h), h.task.period, jitters[k])
            for k, h in enumerate(higher)
        ]
        bound = _fixpoint(
            own=demand_of(view),
            blocking=blocking_of(view, lower),
            interferers=interferers,
            cap=view.task.deadline,
            cache=cache,
            warm_key=(warm_tag, index) if warm_tag is not None else None,
        )
        wcrt[view.task.name] = bound
        if bound is None:
            # Everything below is unschedulable too (interference from an
            # unbounded task cannot be bounded); stop the cascade.
            for v in lower:
                wcrt[v.task.name] = None
            break
        jitters.append(max(0, bound - demand_of(view)))
    return wcrt


def _cpu_dma_blocking(view: _View, lower: List[_View]) -> int:
    """Non-preemptive blocking on both resources (oblivious/overlap)."""
    max_lp_c = max((v.max_c for v in lower), default=0)
    max_lp_l = max((v.max_l for v in lower), default=0)
    return view.n_seg * max_lp_c + view.n_load * max_lp_l


def _analyze_oblivious(
    views: List[_View],
    cache: Optional[FixpointCache] = None,
    warm: bool = False,
) -> Dict[str, Optional[int]]:
    return _single_resource_analysis(
        views,
        demand_of=lambda v: v.total_c + v.total_l,
        interference_of=lambda v: v.total_c + v.total_l,
        blocking_of=_cpu_dma_blocking,
        cache=cache,
        warm_tag="obl" if warm else None,
    )


def _analyze_overlap(
    views: List[_View],
    cache: Optional[FixpointCache] = None,
    warm: bool = False,
) -> Dict[str, Optional[int]]:
    return _single_resource_analysis(
        views,
        demand_of=lambda v: v.latency,
        interference_of=lambda v: v.total_c + v.total_l,
        blocking_of=_cpu_dma_blocking,
        cache=cache,
        warm_tag="ovl" if warm else None,
    )


def _analyze_holistic(
    views: List[_View],
    cache: Optional[FixpointCache] = None,
    warm: bool = False,
) -> Dict[str, Optional[int]]:
    """Two-stage decomposition: DMA stage then CPU stage.

    SOUNDNESS RESTRICTION: the stage-sum ``R <= RL + RC`` is valid only
    for tasks whose buffer depth covers every segment (``buffers >=
    num_segments``).  Then no load waits for a compute (no gating), so:

    * **Stage 1 (DMA)**: all loads are eligible at release and issue
      back-to-back under priority arbitration — at most *one*
      lower-priority transfer blocks (non-preemptive, once started the
      task's own queued transfers outrank any new lower-priority one).
    * **Stage 2 (CPU)**: once every load is done, the job's computes are
      continuously ready, so at most *one* lower-priority section blocks
      and the job never yields to lower priority again.

    With gating (fewer buffers than segments), a load can wait for a
    compute whose delay the DMA stage does not model; the adversarial
    search in ``tests/test_analysis_adversarial.py`` produces real
    violations for the naive stage-sum.  Gated tasks therefore fall back
    to their overlap-analysis bound inside this method.

    Higher-priority demand bunching uses per-resource release jitter
    ``R_j - demand_j`` derived from the method's own final bounds, in
    priority order.

    Warm starts are only used when **no task is gated**: a gated task's
    bound grows with its pipeline latency, which under compute inflation
    can grow slower than the ``total_c``/``total_c + total_l`` terms the
    cpu/both jitter chains subtract — so those jitters are not provably
    monotone across inflation factors and a committed seed could exceed
    the new least fixpoint.  With every task buffered the stage bounds
    satisfy ``rc_new >= rc_old + delta(total_c)`` and ``rl_new >=
    rl_old``, making all three jitter chains monotone.
    """
    if warm and any(v.task.buffers < v.n_seg for v in views):
        warm = False
    wcrt: Dict[str, Optional[int]] = {}
    dma_jitters: List[int] = []
    cpu_jitters: List[int] = []
    both_jitters: List[int] = []
    for index, view in enumerate(views):
        higher = views[:index]
        lower = views[index + 1:]
        bound: Optional[int]
        if view.task.buffers >= view.n_seg:
            rl = _fixpoint(
                own=view.total_l,
                blocking=max((v.max_l for v in lower), default=0),
                interferers=[
                    (h.total_l, h.task.period, dma_jitters[k])
                    for k, h in enumerate(higher)
                ],
                cap=view.task.deadline,
                cache=cache,
                warm_key=("hrl", index) if warm else None,
            )
            rc = None
            if rl is not None:
                rc = _fixpoint(
                    own=view.total_c,
                    blocking=max((v.max_c for v in lower), default=0),
                    interferers=[
                        (h.total_c, h.task.period, cpu_jitters[k])
                        for k, h in enumerate(higher)
                    ],
                    cap=view.task.deadline,
                    cache=cache,
                    warm_key=("hrc", index) if warm else None,
                )
            bound = None if rl is None or rc is None else rl + rc
            if bound is not None and bound > view.task.deadline:
                bound = None
        else:
            bound = _fixpoint(
                own=view.latency,
                blocking=_cpu_dma_blocking(view, lower),
                interferers=[
                    (h.total_c + h.total_l, h.task.period, both_jitters[k])
                    for k, h in enumerate(higher)
                ],
                cap=view.task.deadline,
                cache=cache,
                warm_key=None,
            )
        wcrt[view.task.name] = bound
        if bound is None:
            for v in lower:
                wcrt[v.task.name] = None
            break
        dma_jitters.append(max(0, bound - view.total_l))
        cpu_jitters.append(max(0, bound - view.total_c))
        both_jitters.append(max(0, bound - view.total_c - view.total_l))
    return wcrt


def analyze(
    taskset: TaskSet,
    method: str = "rtmdm",
    cache: Optional[FixpointCache] = None,
    warm: bool = False,
) -> AnalysisResult:
    """Run a schedulability analysis over ``taskset``.

    Args:
        taskset: Segmented tasks with unique priorities and constrained
            deadlines (cycles).
        method: One of :data:`METHODS`.
        cache: Optional :class:`~repro.sched.rta.FixpointCache`; repeated
            fixpoint problems (shared prefixes across Audsley trials,
            re-screens, sweep neighbors) skip iteration entirely.  The
            result is bit-identical with or without it.
        warm: Additionally seed fixpoints from values the caller
            committed at a dominated configuration (e.g. a lower WCET
            inflation factor).  Only sound when the caller's sequence of
            calls is monotone; see :func:`sensitivity_margin`.

    Returns:
        An :class:`AnalysisResult`; ``result.schedulable`` is the
        admission verdict.
    """
    if method not in METHODS:
        raise ValueError(f"unknown analysis method {method!r}; choose from {METHODS}")
    views = _views_by_priority(taskset)
    deadlines = {t.name: t.deadline for t in taskset}
    if method == "oblivious":
        return AnalysisResult(
            "oblivious", _analyze_oblivious(views, cache, warm), deadlines
        )
    if method == "overlap":
        return AnalysisResult(
            "overlap", _analyze_overlap(views, cache, warm), deadlines
        )
    if method == "holistic":
        return AnalysisResult(
            "holistic", _analyze_holistic(views, cache, warm), deadlines
        )
    overlap = _analyze_overlap(views, cache, warm)
    holistic = _analyze_holistic(views, cache, warm)
    combined: Dict[str, Optional[int]] = {}
    for name in overlap:
        bounds = [b for b in (overlap[name], holistic[name]) if b is not None]
        combined[name] = min(bounds) if bounds else None
    return AnalysisResult("rtmdm", combined, deadlines)


def fault_aware_analysis(
    taskset: TaskSet,
    k_faults: int,
    fault_cost: int,
    method: str = "rtmdm",
) -> AnalysisResult:
    """Schedulability with up to ``k_faults`` transfer faults per job.

    Runs ``method`` over the fault-inflated task set
    (:func:`repro.sched.task.inflate_loads`): every task that stages
    weights carries ``k_faults * fault_cost`` extra DMA cycles on its
    first load (serial in the pipeline latency) and on its largest load
    segment (the non-preemptive blocking term), covering the retries,
    CRC rechecks, backoff slots, watchdog waits, and REMAP re-fetches
    any distribution of at most ``k_faults`` faults per job can cost
    (derive ``fault_cost`` from the handler configuration with
    :func:`repro.robust.escalation.fault_overhead_cycles`).  All demand,
    interference, blocking, and latency terms of the analyses are
    monotone in load cycles, so admission of the inflated set is sound
    for the faulty system — property-tested against the simulator under
    ``<= k_faults`` injected faults per job.

    With ``k_faults == 0`` (or a zero cost) this is exactly
    :func:`analyze`.
    """
    return analyze(inflate_loads(taskset, k_faults, fault_cost), method)


def sensitivity_margin(
    taskset: TaskSet,
    method: str = "rtmdm",
    upper: float = 16.0,
    tolerance: float = 1e-3,
) -> Optional[float]:
    """Largest uniform WCET inflation the admission guarantee absorbs.

    Binary-searches the biggest factor ``f`` such that the task set with
    every compute WCET scaled to ``ceil(f * C)`` is still admitted by
    ``method``.  This is the set's *overrun budget*: measured WCETs may
    collectively be wrong by up to this factor before the offline
    guarantee lapses.

    Returns:
        ``None`` when the nominal set is already rejected; ``upper``
        when even the maximal probed inflation is admitted; otherwise a
        factor in ``[1, upper)`` accurate to ``tolerance``.
        Admission is monotone in ``f`` (inflating compute only adds
        demand, interference, and blocking), so the binary search is
        exact up to the tolerance.
    """
    if upper < 1.0:
        raise ValueError(f"upper must be >= 1, got {upper}")
    if tolerance <= 0:
        raise ValueError(f"tolerance must be > 0, got {tolerance}")
    # Incremental fixpoints across the binary search: converged response
    # times are staged during each probe and committed only when the
    # probe is admitted — every later probe inflates strictly more, so
    # committed values are valid (dominated) warm seeds for it.  Probes
    # on the rejected side discard their staged values: they come from a
    # *larger* factor and would overshoot smaller probes' fixpoints.
    cache = FixpointCache()
    if not analyze(taskset, method, cache=cache, warm=True).schedulable:
        return None
    cache.commit()
    if analyze(inflate_compute(taskset, upper), method, cache=cache, warm=True).schedulable:
        return upper
    cache.discard()
    lo, hi = 1.0, upper
    while hi - lo > tolerance:
        mid = (lo + hi) / 2
        if analyze(inflate_compute(taskset, mid), method, cache=cache, warm=True).schedulable:
            lo = mid
            cache.commit()
        else:
            hi = mid
            cache.discard()
    return lo


def sensitivity_margin_batch(
    tasksets: Sequence[TaskSet],
    method: str = "rtmdm",
    upper: float = 16.0,
    tolerance: float = 1e-3,
) -> List[Optional[float]]:
    """Batched :func:`sensitivity_margin` over many task sets.

    Runs every set's binary search in lock-step: at each step all still-
    active sets' inflated probes go through one vectorized batch analysis
    (:func:`repro.sched.vecrta.analyze_taskset_batch`; scalar fallback
    when the engine is off).  Each set sees exactly the probe sequence
    the scalar search would issue — midpoints depend only on that set's
    own lo/hi floats and verdicts are bit-identical — so returned
    margins equal ``[sensitivity_margin(ts, ...) for ts in tasksets]``.
    """
    if upper < 1.0:
        raise ValueError(f"upper must be >= 1, got {upper}")
    if tolerance <= 0:
        raise ValueError(f"tolerance must be > 0, got {tolerance}")
    from repro.sched import vecrta

    tasksets = list(tasksets)
    cache = FixpointCache()
    margins: List[Optional[float]] = [None] * len(tasksets)

    def probe(pairs):
        return vecrta.analyze_taskset_batch(pairs, cache=cache)

    base = probe([(ts, method) for ts in tasksets])
    admitted = [i for i, res in enumerate(base) if res.schedulable]
    top = probe([(inflate_compute(tasksets[i], upper), method) for i in admitted])
    bounds: Dict[int, Tuple[float, float]] = {}
    for i, res in zip(admitted, top):
        if res.schedulable:
            margins[i] = upper
        elif upper - 1.0 > tolerance:
            bounds[i] = (1.0, upper)
        else:
            margins[i] = 1.0
    active = sorted(bounds)
    while active:
        mids = {i: (bounds[i][0] + bounds[i][1]) / 2 for i in active}
        step = probe(
            [(inflate_compute(tasksets[i], mids[i]), method) for i in active]
        )
        remaining = []
        for i, res in zip(active, step):
            lo, hi = bounds[i]
            if res.schedulable:
                lo = mids[i]
            else:
                hi = mids[i]
            if hi - lo > tolerance:
                bounds[i] = (lo, hi)
                remaining.append(i)
            else:
                margins[i] = lo
        active = remaining
    return margins
