"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.hw.presets import get_platform
from repro.sched.task import PeriodicTask, Segment, TaskSet


@pytest.fixture
def platform():
    """The default evaluation platform (STM32F746 + QSPI NOR)."""
    return get_platform("f746-qspi")


@pytest.fixture
def fast_platform():
    """A high-bandwidth platform (H743 + octal PSRAM)."""
    return get_platform("h743-octal")


def make_task(
    name: str,
    segs,
    period: int,
    deadline: int = 0,
    priority: int = 0,
    buffers: int = 2,
    phase: int = 0,
) -> PeriodicTask:
    """Build a task from ``(load, compute)`` cycle pairs."""
    segments = tuple(
        Segment(name=f"{name}.s{i}", load_cycles=load, compute_cycles=comp)
        for i, (load, comp) in enumerate(segs)
    )
    return PeriodicTask(
        name=name,
        segments=segments,
        period=period,
        deadline=deadline or period,
        priority=priority,
        buffers=buffers,
        phase=phase,
    )


def random_taskset(
    rng: random.Random,
    n_tasks: int = 3,
    max_segments: int = 5,
    util_target: float = 0.5,
) -> TaskSet:
    """A random small segmented task set around a CPU utilization target."""
    tasks = []
    shares = [rng.uniform(0.5, 1.5) for _ in range(n_tasks)]
    total = sum(shares)
    for i in range(n_tasks):
        n_seg = rng.randint(1, max_segments)
        segs = [
            (rng.choice([0, rng.randint(10, 300)]), rng.randint(50, 800))
            for _ in range(n_seg)
        ]
        compute = sum(c for _, c in segs)
        util = util_target * shares[i] / total
        period = max(compute + 1, round(compute / util))
        deadline = rng.randint((period + 1) // 2 + 1, period)
        tasks.append(
            make_task(
                f"t{i}",
                segs,
                period=period,
                deadline=deadline,
                priority=i,
                buffers=rng.randint(1, 3),
            )
        )
    return TaskSet.of(tasks)
