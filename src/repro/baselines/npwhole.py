"""Whole-job non-preemptive baseline.

The job still pipelines its own loads internally (double buffering), but
the scheduler offers no inter-task switch points until the job finishes:
one job = one non-preemptive section of its isolated pipelined latency.
This is how a runtime without a segment-level scheduler behaves, and it
isolates the schedulability benefit of RT-MDM's segment boundaries.

During the job the DMA is dedicated to it, so the section length is the
isolated latency and no DMA leg is exposed to other tasks.
"""

from __future__ import annotations

from repro.core import segcache
from repro.core.pipeline import isolated_latency
from repro.sched.task import PeriodicTask, Segment


def _collapse(task: PeriodicTask) -> Segment:
    return Segment(
        name=f"{task.name}/whole",
        load_cycles=0,
        compute_cycles=isolated_latency(task.segments, task.buffers),
        load_bytes=sum(s.load_bytes for s in task.segments),
    )


def whole_job(task: PeriodicTask) -> PeriodicTask:
    """Collapse a segmented task into one non-preemptive section."""
    section = segcache.cached_segment_transform(
        "np-whole",
        task.segments,
        (task.name, task.buffers),
        lambda: _collapse(task),
    )
    return PeriodicTask(
        name=task.name,
        segments=(section,),
        period=task.period,
        deadline=task.deadline,
        priority=task.priority,
        phase=task.phase,
        buffers=task.buffers,
    )
