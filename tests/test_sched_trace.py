"""Unit tests for trace recording and rendering."""

import pytest

from repro.sched.trace import Trace, TraceEvent


def _busy(time, dur, res, task, job=0, seg=0):
    return TraceEvent(
        time=time, duration=dur, resource=res, kind="compute" if res == "cpu" else "load",
        task=task, job=job, segment=seg,
    )


class TestTrace:
    def test_intervals_sorted_and_filtered(self):
        trace = Trace()
        trace.add(_busy(50, 10, "cpu", "b"))
        trace.add(_busy(0, 20, "cpu", "a"))
        trace.add(_busy(10, 5, "dma", "a"))
        cpu = trace.intervals("cpu")
        assert [e.time for e in cpu] == [0, 50]
        assert len(trace.intervals("dma")) == 1

    def test_points(self):
        trace = Trace()
        trace.add(TraceEvent(5, 0, "", "release", "a", 0))
        trace.add(TraceEvent(3, 0, "", "miss", "a", 0))
        assert [e.time for e in trace.points("release")] == [5]
        assert [e.time for e in trace.points("miss")] == [3]

    def test_busy_cycles(self):
        trace = Trace()
        trace.add(_busy(0, 20, "cpu", "a"))
        trace.add(_busy(30, 10, "cpu", "a"))
        assert trace.busy_cycles("cpu") == 30

    def test_verify_no_overlap_passes_adjacent(self):
        trace = Trace()
        trace.add(_busy(0, 10, "cpu", "a"))
        trace.add(_busy(10, 10, "cpu", "b"))
        trace.verify_no_overlap()

    def test_verify_no_overlap_detects_conflict(self):
        trace = Trace()
        trace.add(_busy(0, 10, "cpu", "a"))
        trace.add(_busy(5, 10, "cpu", "b"))
        with pytest.raises(AssertionError, match="overlap"):
            trace.verify_no_overlap()

    def test_event_end(self):
        assert _busy(5, 10, "cpu", "a").end == 15

    def test_gantt_renders_rows_and_legend(self):
        trace = Trace()
        trace.add(_busy(0, 50, "cpu", "alpha"))
        trace.add(_busy(50, 50, "cpu", "beta"))
        trace.add(_busy(0, 30, "dma", "beta"))
        chart = trace.gantt(until=100, width=20)
        assert "cpu" in chart and "dma" in chart
        assert "A=alpha" in chart and "B=beta" in chart
        cpu_row = [l for l in chart.splitlines() if l.startswith(" cpu")][0]
        assert "A" in cpu_row and "B" in cpu_row

    def test_gantt_empty(self):
        assert Trace().gantt() == "(empty trace)"

    def test_gantt_idle_shown_as_dots(self):
        trace = Trace()
        trace.add(_busy(0, 10, "cpu", "a"))
        chart = trace.gantt(until=100, width=10)
        cpu_row = [l for l in chart.splitlines() if l.startswith(" cpu")][0]
        assert "." in cpu_row
