"""ASCII line plots for sweep experiments.

Turns an :class:`~repro.eval.reporting.ExperimentResult` whose first
column is the x-axis into a terminal chart, so `rtmdm exp EXP-F4` shows
the *figure*, not just the rows.  Dependency-free by design.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.eval.reporting import ExperimentResult

#: Series glyphs, assigned in column order.
_GLYPHS = "ox+*#@%&"


def ascii_plot(
    result: ExperimentResult,
    series: Optional[Sequence[str]] = None,
    height: int = 12,
    width: int = 64,
) -> str:
    """Render selected numeric columns of a sweep as an ASCII chart.

    Args:
        result: A sweep result (first column = x values).
        series: Column names to plot (default: every numeric column).
        height: Chart rows.
        width: Chart columns.
    """
    x_label = result.columns[0]
    xs = result.column(x_label)
    if series is None:
        series = [
            name
            for name in result.columns[1:]
            if any(isinstance(v, (int, float)) for v in result.column(name))
        ]
    values: dict = {}
    for name in series:
        values[name] = [
            v if isinstance(v, (int, float)) else None for v in result.column(name)
        ]
    flat = [v for vs in values.values() for v in vs if v is not None]
    if not flat or len(xs) < 2:
        return "(nothing to plot)"
    lo, hi = min(flat), max(flat)
    if hi == lo:
        hi = lo + 1.0
    grid: List[List[str]] = [[" "] * width for _ in range(height)]

    def col_of(index: int) -> int:
        return round(index * (width - 1) / (len(xs) - 1))

    def row_of(value: float) -> int:
        frac = (value - lo) / (hi - lo)
        return (height - 1) - round(frac * (height - 1))

    for si, name in enumerate(series):
        glyph = _GLYPHS[si % len(_GLYPHS)]
        points = [
            (col_of(i), row_of(v))
            for i, v in enumerate(values[name])
            if v is not None
        ]
        # Connect consecutive points with linear interpolation.
        for (c0, r0), (c1, r1) in zip(points, points[1:]):
            steps = max(1, c1 - c0)
            for step in range(steps + 1):
                c = c0 + step
                r = round(r0 + (r1 - r0) * step / steps)
                if grid[r][c] == " " or step in (0, steps):
                    grid[r][c] = glyph
        for c, r in points:
            grid[r][c] = glyph
    lines = [f"== {result.exp_id}: {result.title} =="]
    for i, row in enumerate(grid):
        if i == 0:
            label = f"{hi:8.3f} |"
        elif i == height - 1:
            label = f"{lo:8.3f} |"
        else:
            label = "         |"
        lines.append(label + "".join(row))
    lines.append("         +" + "-" * width)
    lines.append(
        f"          {xs[0]!s:<{max(1, width // 2)}}{xs[-1]!s:>{width // 2}}"
    )
    lines.append(f"          x: {x_label}")
    legend = "  ".join(
        f"{_GLYPHS[i % len(_GLYPHS)]}={name}" for i, name in enumerate(series)
    )
    lines.append(f"          {legend}")
    return "\n".join(lines)
