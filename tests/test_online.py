"""Unit tests for the online admission-control runtime (``repro.online``)."""

from __future__ import annotations

import random

import pytest

from conftest import make_task
from repro.core import segcache
from repro.hw.presets import get_platform
from repro.online.admission import AdmissionController
from repro.online.events import Request, RequestKind, RequestTrace
from repro.online.modechange import (
    Protocol,
    idle_instant_bound,
    serialized_utilization,
)
from repro.online.runtime import OnlineRuntime
from repro.online.sim import DynamicSimulator, simulate_dynamic
from repro.sched.policies import CpuPolicy
from repro.sched.simulator import SimConfig
from repro.sched.task import TaskSet
from repro.workload.arrivals import bursty_trace, poisson_trace

PLATFORM = get_platform("f746-qspi")


@pytest.fixture(autouse=True)
def fresh_caches():
    segcache.clear_all()
    yield
    segcache.clear_all()


def _admit(time_s, task, model="tinyconv", period_s=0.2, deadline_s=0.0):
    return Request(
        time_s=time_s, kind=RequestKind.ADMIT, task=task, model=model,
        period_s=period_s, deadline_s=deadline_s,
    )


def _remove(time_s, task):
    return Request(time_s=time_s, kind=RequestKind.REMOVE, task=task)


def _rescale(time_s, task, period_s):
    return Request(
        time_s=time_s, kind=RequestKind.RESCALE, task=task, period_s=period_s
    )


class TestEvents:
    def test_request_validation(self):
        with pytest.raises(ValueError, match="time"):
            _admit(-1.0, "a")
        with pytest.raises(ValueError, match="task"):
            Request(time_s=0, kind=RequestKind.REMOVE, task="")
        with pytest.raises(ValueError, match="model"):
            Request(time_s=0, kind=RequestKind.ADMIT, task="a", period_s=1.0)
        with pytest.raises(ValueError, match="period"):
            Request(time_s=0, kind=RequestKind.ADMIT, task="a", model="lenet5")
        with pytest.raises(ValueError, match="period"):
            Request(time_s=0, kind=RequestKind.RESCALE, task="a")
        with pytest.raises(ValueError, match="deadline"):
            _admit(0.0, "a", period_s=0.2, deadline_s=0.3)

    def test_trace_ordering_and_validation(self):
        trace = RequestTrace.of(
            [_admit(2.0, "b"), _admit(1.0, "a")], duration_s=5.0
        )
        assert [r.task for r in trace] == ["a", "b"]
        with pytest.raises(ValueError):
            RequestTrace.of([_admit(6.0, "a")], duration_s=5.0)

    def test_json_round_trip(self):
        trace = RequestTrace.of(
            [
                _admit(0.5, "kws", model="ds-cnn", period_s=0.25),
                _rescale(1.0, "kws", period_s=0.5),
                _remove(2.0, "kws"),
            ],
            duration_s=4.0,
        )
        restored = RequestTrace.from_json(trace.to_json())
        assert restored == trace
        assert '"rtmdm-trace/1"' in trace.to_json()

    def test_generated_trace_round_trip(self):
        trace = poisson_trace(6.0, 1.5, seed=11)
        assert RequestTrace.from_json(trace.to_json()) == trace
        # Pure function of the arguments.
        assert poisson_trace(6.0, 1.5, seed=11) == trace
        assert poisson_trace(6.0, 1.5, seed=12) != trace

    def test_bursty_trace_round_trip_and_determinism(self):
        trace = bursty_trace(6.0, 1.5, seed=11)
        assert RequestTrace.from_json(trace.to_json()) == trace
        assert bursty_trace(6.0, 1.5, seed=11) == trace
        assert bursty_trace(6.0, 1.5, seed=12) != trace
        # Different process than Poisson at the same seed.
        assert trace != poisson_trace(6.0, 1.5, seed=11)

    def test_bursty_trace_preserves_mean_rate(self):
        # The MMPP's OFF rate is solved so the long-run mean matches
        # rate_hz; over many seeds the ADMIT count should straddle the
        # Poisson expectation within a loose band.
        rate, duration = 2.0, 20.0
        admits = [
            sum(
                1
                for r in bursty_trace(duration, rate, seed=s)
                if r.kind is RequestKind.ADMIT
            )
            for s in range(12)
        ]
        mean = sum(admits) / len(admits)
        assert 0.7 * rate * duration < mean < 1.3 * rate * duration

    def test_bursty_trace_clusters_arrivals(self):
        # With a high burst factor the coefficient of variation of
        # inter-arrival gaps must exceed the Poisson baseline (~1).
        def cv(trace):
            times = sorted(
                r.time_s for r in trace if r.kind is RequestKind.ADMIT
            )
            gaps = [b - a for a, b in zip(times, times[1:])]
            mean = sum(gaps) / len(gaps)
            var = sum((g - mean) ** 2 for g in gaps) / len(gaps)
            return (var ** 0.5) / mean

        bursty_cv = sum(
            cv(bursty_trace(30.0, 3.0, seed=s, burst_factor=8.0, duty=0.1))
            for s in range(5)
        )
        poisson_cv = sum(cv(poisson_trace(30.0, 3.0, seed=s)) for s in range(5))
        assert bursty_cv > 1.3 * poisson_cv

    def test_bursty_trace_validation(self):
        with pytest.raises(ValueError, match="burst_factor"):
            bursty_trace(5.0, 1.0, seed=1, burst_factor=0.5)
        with pytest.raises(ValueError, match="duty"):
            bursty_trace(5.0, 1.0, seed=1, duty=1.5)
        with pytest.raises(ValueError, match="OFF rate"):
            bursty_trace(5.0, 1.0, seed=1, burst_factor=8.0, duty=0.25)
        with pytest.raises(ValueError, match="mean_cycle_s"):
            bursty_trace(5.0, 1.0, seed=1, mean_cycle_s=0.0)


class TestModeChange:
    def test_empty_set_is_idle_now(self):
        assert idle_instant_bound([]) == 0

    def test_overutilized_has_no_bound(self):
        task = make_task("t", [(400, 700)], period=1000)
        assert serialized_utilization([task]) > 1.0
        assert idle_instant_bound([task]) is None

    def test_known_fixpoint(self):
        # Serialized demand 300 per 1000 plus 200 per 800: L* solves
        # L = ceil(L/1000)*300 + ceil(L/800)*200 -> 500.
        a = make_task("a", [(100, 200)], period=1000)
        b = make_task("b", [(0, 200)], period=800)
        assert idle_instant_bound([a, b]) == 500

    def test_bound_dominates_simulated_busy_period(self):
        rng = random.Random(42)
        for _ in range(10):
            tasks = []
            for i in range(rng.randint(2, 4)):
                period = rng.randint(500, 3000)
                compute = rng.randint(1, period // 8)
                load = rng.randint(0, period // 16)
                tasks.append(
                    make_task(f"t{i}", [(load, compute)], period=period,
                              priority=i)
                )
            bound = idle_instant_bound(tasks)
            assert bound is not None  # util <= 3/8 by construction
            # One synchronous job per task (stop right after the first
            # release): the whole backlog must clear within L*.
            result = simulate_dynamic(
                TaskSet.of(tasks),
                SimConfig(policy=CpuPolicy.FP_NP, horizon=2 * bound + 10),
                stops={t.name: 1 for t in tasks},
            )
            makespan = max(
                result.max_response(t.name) for t in tasks
            )
            assert all(s.unfinished == 0 for s in result.stats.values())
            assert makespan <= bound


class TestDynamicSimulator:
    def test_stop_suppresses_releases(self):
        task = make_task("t", [(0, 10)], period=100)
        config = SimConfig(policy=CpuPolicy.FP_NP, horizon=1000)
        full = simulate_dynamic(TaskSet.of([task]), config)
        stopped = simulate_dynamic(TaskSet.of([task]), config, {"t": 500})
        assert full.stats["t"].jobs == 10
        assert stopped.stats["t"].jobs == 5  # releases at 0..400 only

    def test_job_released_before_stop_completes(self):
        task = make_task("t", [(0, 80)], period=100)
        config = SimConfig(policy=CpuPolicy.FP_NP, horizon=1000)
        result = simulate_dynamic(TaskSet.of([task]), config, {"t": 1})
        assert result.stats["t"].jobs == 1
        assert result.stats["t"].unfinished == 0
        assert result.max_response("t") == 80

    def test_unknown_stop_name_rejected(self):
        task = make_task("t", [(0, 10)], period=100)
        config = SimConfig(policy=CpuPolicy.FP_NP, horizon=1000)
        with pytest.raises(KeyError):
            DynamicSimulator(TaskSet.of([task]), config, {"ghost": 5})
        with pytest.raises(ValueError):
            DynamicSimulator(TaskSet.of([task]), config, {"t": -1})


class TestAdmissionController:
    def test_admit_then_remove(self):
        ctrl = AdmissionController(PLATFORM)
        d = ctrl.handle(_admit(0.0, "kws", model="ds-cnn", period_s=0.4))
        assert d.outcome == "admitted" and d.mode == "full"
        assert d.reason in ("rta-oblivious", "analysis")
        assert d.protocol == "immediate"
        assert "kws" in ctrl.resident
        d2 = ctrl.handle(_remove(1.0, "kws"))
        assert d2.outcome == "removed"
        assert "kws" not in ctrl.resident
        # Retired instance keeps its stop cycle for the final execution.
        stopped = [i for i in ctrl.all_instances() if i.stop_cycle is not None]
        assert len(stopped) == 1
        assert stopped[0].stop_cycle == PLATFORM.mcu.seconds_to_cycles(1.0)

    def test_duplicate_admit_ignored(self):
        ctrl = AdmissionController(PLATFORM)
        ctrl.handle(_admit(0.0, "a"))
        d = ctrl.handle(_admit(0.5, "a"))
        assert d.outcome == "ignored" and d.reason == "already-resident"

    def test_remove_unknown_ignored(self):
        ctrl = AdmissionController(PLATFORM)
        d = ctrl.handle(_remove(0.0, "nobody"))
        assert d.outcome == "ignored" and d.reason == "not-resident"

    def test_sram_rejection_reason(self):
        tiny = PLATFORM.with_sram_bytes(24 * 1024)  # ~8 KiB usable
        ctrl = AdmissionController(tiny)
        d = ctrl.handle(_admit(0.0, "big", model="resnet8", period_s=0.8))
        assert d.outcome == "rejected"
        assert d.reason.startswith("sram:")

    def test_sram_freed_after_drain_window(self):
        ctrl = AdmissionController(PLATFORM)
        d = ctrl.handle(_admit(0.0, "a", model="ds-cnn", period_s=0.4))
        free_before = ctrl.free_sram(PLATFORM.mcu.seconds_to_cycles(0.1))
        ctrl.handle(_remove(1.0, "a"))
        cycles = PLATFORM.mcu.seconds_to_cycles
        # Still reserved while a residual job may run...
        assert ctrl.free_sram(cycles(1.1)) == free_before
        # ...and released after the departing instance's deadline passed.
        assert ctrl.free_sram(cycles(1.5)) == free_before + d.sram_bytes

    def test_degradation_ladder_before_rejection(self):
        ctrl = AdmissionController(PLATFORM)
        # resnet8's isolated latency (~173 ms) exceeds this deadline, so
        # full service cannot pass; the ladder must kick in.
        d = ctrl.handle(_admit(0.0, "fast", model="resnet8", period_s=0.1))
        assert d.outcome == "admitted"
        assert d.mode != "full"

    def test_hopeless_rate_rejected_with_rta_reason(self):
        ctrl = AdmissionController(
            PLATFORM, stretch_factors=(1.25,), degrade_factor=1.0
        )
        # No variant fallback and only a tiny stretch: a deadline far
        # below resnet8's latency exhausts the whole ladder.
        d = ctrl.handle(_admit(0.0, "fast", model="resnet8", period_s=0.1))
        assert d.outcome == "rejected"
        assert d.reason.startswith("rta:")

    def test_rescale_resident_task(self):
        ctrl = AdmissionController(PLATFORM)
        ctrl.handle(_admit(0.0, "kws", model="ds-cnn", period_s=0.4))
        d = ctrl.handle(_rescale(1.0, "kws", period_s=0.8))
        assert d.outcome == "rescaled"
        assert d.protocol in ("immediate", "drain")
        assert ctrl.resident["kws"].instance == "kws#2"
        assert ctrl.resident["kws"].period == PLATFORM.mcu.seconds_to_cycles(0.8)

    def test_rescale_unknown_ignored(self):
        ctrl = AdmissionController(PLATFORM)
        d = ctrl.handle(_rescale(0.0, "nobody", period_s=0.5))
        assert d.outcome == "ignored"

    def test_drain_protocol_delays_start(self):
        ctrl = AdmissionController(PLATFORM, protocol=Protocol.DRAIN)
        ctrl.handle(_admit(0.0, "a", model="ds-cnn", period_s=0.4))
        d = ctrl.handle(_admit(1.0, "b", model="lenet5", period_s=0.2))
        assert d.outcome == "admitted"
        assert d.protocol == "drain"
        assert d.start_cycle > PLATFORM.mcu.seconds_to_cycles(1.0)

    def test_decision_log_sequencing(self):
        ctrl = AdmissionController(PLATFORM)
        ctrl.handle(_admit(0.0, "a"))
        ctrl.handle(_remove(1.0, "a"))
        assert [d.seq for d in ctrl.decisions] == [0, 1]
        assert all(d.latency_us >= 0 for d in ctrl.decisions)


class TestServeReport:
    def test_aggregates_and_dict(self):
        runtime = OnlineRuntime(PLATFORM)
        trace = RequestTrace.of(
            [
                _admit(0.1, "kws", model="ds-cnn", period_s=0.4),
                _admit(0.2, "wake", model="tinyconv", period_s=0.2),
                _remove(2.0, "wake"),
                _remove(3.0, "ghost"),
            ],
            duration_s=4.0,
        )
        report = runtime.serve(trace)
        assert report.requests == 4
        assert report.admit_requests == 2
        assert report.admitted == 2
        assert report.admission_ratio == 1.0
        assert report.sound
        payload = report.to_dict(mcu=PLATFORM.mcu)
        assert payload["schema"] == "rtmdm-serve/1"
        assert payload["ignored"] == 1
        assert len(payload["decisions"]) == 4
        assert payload["sim"]["total_misses"] == 0
        latency = payload["decision_latency_us"]
        assert latency["n"] == 4
        assert set(latency) == {"n", "mean", "p50", "p95", "p99", "max"}
        assert 0 < latency["p50"] <= latency["p99"] <= latency["max"]

    def test_serve_without_simulation(self):
        runtime = OnlineRuntime(PLATFORM)
        trace = RequestTrace.of([_admit(0.0, "a")], duration_s=1.0)
        report = runtime.serve(trace, simulate=False)
        assert report.sim is None
        assert report.sound  # vacuously: decisions only
        assert "sim" not in report.to_dict()


class TestSoundnessInvariant:
    """ISSUE acceptance: across seeded random request traces, no admitted
    job misses a deadline in fault-free execution, and every rejection is
    justified by a failed schedulability argument or SRAM infeasibility.
    """

    GRID = [
        (seed, rate, kib, proto)
        for seed in range(4)
        for rate, kib in ((1.0, 160), (2.5, 256))
        for proto in (Protocol.AUTO, Protocol.IMMEDIATE, Protocol.DRAIN)
    ]  # 24 traces

    @pytest.mark.parametrize("seed,rate,kib,proto", GRID)
    def test_admitted_never_miss(self, seed, rate, kib, proto):
        platform = get_platform("f746-qspi").with_sram_bytes(kib * 1024)
        trace = poisson_trace(8.0, rate, seed=9000 + 37 * seed)
        report = OnlineRuntime(platform, protocol=proto).serve(trace)
        assert report.sound, (
            f"admitted instance missed a deadline (seed={seed}, rate={rate}, "
            f"sram={kib}KiB, protocol={proto.value})"
        )
        for d in report.decisions:
            if d.outcome == "rejected":
                assert d.reason.startswith(
                    ("sram:", "rta:", "rta-transition:", "drain-unbounded:")
                ), f"unjustified rejection: {d}"

    def test_decision_paths_all_exercised(self):
        """The invariant grid is only meaningful if it actually exercises
        admissions, degradations and both rejection families."""
        totals = {"admitted": 0, "degraded": 0, "sram": 0, "rta": 0}
        for seed, rate, kib, proto in self.GRID:
            platform = get_platform("f746-qspi").with_sram_bytes(kib * 1024)
            trace = poisson_trace(8.0, rate, seed=9000 + 37 * seed)
            report = OnlineRuntime(platform, protocol=proto).serve(
                trace, simulate=False
            )
            totals["admitted"] += report.admitted
            totals["degraded"] += report.degraded
            totals["sram"] += report.rejected_sram
            totals["rta"] += report.rejected_rta
        assert all(v > 0 for v in totals.values()), totals


class TestRescaleTransitions:
    """RESCALE transitional-union edge cases (mode-change accounting)."""

    def _monitor_ok(self, ctrl, time_s):
        from repro.online.durable import InvariantMonitor

        InvariantMonitor(ctrl).check(PLATFORM.mcu.seconds_to_cycles(time_s))

    def test_zero_stretch_rescale_to_same_period(self):
        """A RESCALE to the current period is a no-op rate-wise but still
        a full instance switch: the transitional union contains the task
        twice at the same rate and must pass without special-casing."""
        ctrl = AdmissionController(PLATFORM)
        ctrl.handle(_admit(0.0, "kws", model="ds-cnn", period_s=0.4))
        old = ctrl.resident["kws"]
        d = ctrl.handle(_rescale(1.0, "kws", period_s=0.4))
        assert d.outcome == "rescaled"
        new = ctrl.resident["kws"]
        assert new.instance == "kws#2"
        assert new.period == old.period
        retired = [i for i in ctrl.all_instances() if i.stop_cycle is not None]
        assert [i.instance for i in retired] == ["kws"]
        assert new.start_cycle >= retired[0].stop_cycle
        self._monitor_ok(ctrl, 1.0)

    def test_back_to_back_rescales_chain_cleanly(self):
        """Two RESCALEs on the same task before the first drain window
        closes: each switch must retire its predecessor, keep start/stop
        ordered along the chain, and hold both drain reservations."""
        ctrl = AdmissionController(PLATFORM)
        ctrl.handle(_admit(0.0, "kws", model="ds-cnn", period_s=0.4))
        d1 = ctrl.handle(_rescale(0.5, "kws", period_s=0.8))
        d2 = ctrl.handle(_rescale(0.6, "kws", period_s=0.3))
        assert d1.outcome == d2.outcome == "rescaled"
        assert ctrl.resident["kws"].instance == "kws#3"
        chain = [i for i in ctrl.all_instances() if i.task == "kws"]
        chain.sort(key=lambda i: i.start_cycle)
        for prev, nxt in zip(chain, chain[1:]):
            assert prev.stop_cycle is not None
            assert nxt.start_cycle >= prev.stop_cycle
        # Both retired instances still hold their drain reservations.
        t = PLATFORM.mcu.seconds_to_cycles(0.6)
        draining = ctrl.reserved_sram(t) - sum(
            i.sram_bytes for i in ctrl.resident.values()
        )
        assert draining >= sum(
            i.sram_bytes for i in chain if i.stop_cycle is not None
        )
        self._monitor_ok(ctrl, 0.6)

    def test_rescale_racing_remove(self):
        """REMOVE arriving between a drained RESCALE's decision and its
        delayed start must retire the not-yet-started successor without
        corrupting the accounting, and free the SRAM only after both
        drain windows close."""
        ctrl = AdmissionController(PLATFORM, protocol=Protocol.DRAIN)
        ctrl.handle(_admit(0.0, "a", model="ds-cnn", period_s=0.4))
        ctrl.handle(_admit(0.1, "b", model="lenet5", period_s=0.2))
        d = ctrl.handle(_rescale(1.0, "a", period_s=0.8))
        assert d.outcome == "rescaled"
        assert d.protocol == "drain"
        start = d.start_cycle
        assert start > PLATFORM.mcu.seconds_to_cycles(1.0)
        removed_at = PLATFORM.mcu.seconds_to_cycles(1.001)
        d = ctrl.handle(_remove(1.001, "a"))
        assert d.outcome == "removed"
        assert "a" not in ctrl.resident
        # The whole chain is stopped; nothing of "a" survives as live.
        chain = [i for i in ctrl.all_instances() if i.task == "a"]
        assert all(i.stop_cycle is not None for i in chain)
        # The successor's buffers stay reserved through its own drain
        # window even though it never released a job.
        assert ctrl.reserved_sram(removed_at) > sum(
            i.sram_bytes for i in ctrl.resident.values()
        )
        self._monitor_ok(ctrl, 1.001)
        # Far past every drain window all of "a"'s SRAM is back.
        horizon = PLATFORM.mcu.seconds_to_cycles(60.0)
        assert ctrl.reserved_sram(horizon) == sum(
            i.sram_bytes for i in ctrl.resident.values()
        )

    def test_rescale_after_remove_is_ignored(self):
        """The inverse race: the REMOVE wins outright, so the late
        RESCALE must be a no-op, not a resurrection."""
        ctrl = AdmissionController(PLATFORM)
        ctrl.handle(_admit(0.0, "kws", model="ds-cnn", period_s=0.4))
        ctrl.handle(_remove(1.0, "kws"))
        d = ctrl.handle(_rescale(1.1, "kws", period_s=0.2))
        assert d.outcome == "ignored"
        assert d.reason == "not-resident"
        assert "kws" not in ctrl.resident
        self._monitor_ok(ctrl, 1.1)


class TestTraceFormat:
    """Hardened JSON round-trip (satellite of the durable-serving work)."""

    def test_round_trip_carries_schema_and_version(self):
        from repro.online.events import TRACE_FORMAT_VERSION, TRACE_SCHEMA
        import json as _json

        trace = RequestTrace.of([_admit(0.5, "kws")], duration_s=2.0)
        payload = _json.loads(trace.to_json())
        assert payload["schema"] == TRACE_SCHEMA
        assert payload["version"] == TRACE_FORMAT_VERSION
        assert RequestTrace.from_json(trace.to_json()).requests == trace.requests

    def test_unknown_schema_and_version_rejected(self):
        from repro.online.events import TraceFormatError

        with pytest.raises(TraceFormatError, match="schema"):
            RequestTrace.from_json('{"schema": "bogus/9"}')
        with pytest.raises(TraceFormatError, match="version"):
            RequestTrace.from_json(
                '{"schema": "rtmdm-trace/1", "version": 99}'
            )

    def test_unknown_kind_lists_known_kinds_with_location(self):
        from repro.online.events import TraceFormatError

        text = (
            '{\n'
            '  "schema": "rtmdm-trace/1",\n'
            '  "version": 1,\n'
            '  "duration_s": 2.0,\n'
            '  "requests": [\n'
            '    {"time_s": 0.1, "kind": "admit", "task": "a",'
            ' "model": "tinyconv", "period_s": 0.2},\n'
            '    {"time_s": 0.5, "kind": "explode", "task": "b"}\n'
            '  ]\n'
            '}\n'
        )
        with pytest.raises(TraceFormatError) as excinfo:
            RequestTrace.from_json(text)
        error = excinfo.value
        assert "explode" in str(error)
        assert "admit, remove, rescale" in str(error)
        assert error.index == 1
        assert error.line == 7  # points at the bad request's line

    def test_missing_fields_and_bad_json(self):
        from repro.online.events import TraceFormatError

        with pytest.raises(TraceFormatError, match="missing required"):
            RequestTrace.from_json('{"schema": "rtmdm-trace/1"}')
        with pytest.raises(TraceFormatError) as excinfo:
            RequestTrace.from_json('{"schema": "rtmdm-trace/1",\n  broken')
        assert excinfo.value.line == 2

    def test_request_level_semantic_error_is_typed(self):
        from repro.online.events import Request, TraceFormatError

        with pytest.raises(TraceFormatError, match="period_s"):
            Request.from_dict(
                {"time_s": 0.1, "kind": "rescale", "task": "a"}, index=3
            )
        with pytest.raises(TraceFormatError, match="request #3"):
            Request.from_dict({"time_s": 0.1, "kind": "admit"}, index=3)
