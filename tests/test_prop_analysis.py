"""Property-based tests for analysis monotonicity invariants."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import random_taskset
from repro.core.analysis import METHODS, analyze
from repro.sched.task import TaskSet

seeds = st.integers(0, 10_000)


@given(seeds, st.sampled_from(METHODS))
@settings(max_examples=60, deadline=None)
def test_removing_lowest_priority_task_never_worsens_others(seed, method):
    """Less blocking and no interference change: bounds can only improve."""
    rng = random.Random(seed)
    ts = random_taskset(rng, n_tasks=3, util_target=0.4)
    full = analyze(ts, method)
    lowest = ts.sorted_by_priority()[-1].name
    reduced_set = TaskSet.of(t for t in ts if t.name != lowest)
    reduced = analyze(reduced_set, method)
    for task in reduced_set:
        full_bound = full.wcrt[task.name]
        red_bound = reduced.wcrt[task.name]
        if full_bound is not None:
            assert red_bound is not None
            assert red_bound <= full_bound


@given(seeds, st.sampled_from(METHODS))
@settings(max_examples=60, deadline=None)
def test_bounds_at_least_own_demand(seed, method):
    """No bound can fall below the task's own isolated latency."""
    from repro.core.pipeline import isolated_latency

    rng = random.Random(seed)
    ts = random_taskset(rng, n_tasks=3, util_target=0.4)
    result = analyze(ts, method)
    for task in ts:
        bound = result.wcrt[task.name]
        if bound is not None:
            assert bound >= isolated_latency(task.segments, task.buffers)


@given(seeds)
@settings(max_examples=40, deadline=None)
def test_analysis_is_deterministic(seed):
    rng1, rng2 = random.Random(seed), random.Random(seed)
    ts1 = random_taskset(rng1, n_tasks=3)
    ts2 = random_taskset(rng2, n_tasks=3)
    assert analyze(ts1, "rtmdm").wcrt == analyze(ts2, "rtmdm").wcrt


@given(seeds)
@settings(max_examples=40, deadline=None)
def test_priority_shift_preserves_relative_order_semantics(seed):
    """Adding a constant to every priority changes nothing."""
    rng = random.Random(seed)
    ts = random_taskset(rng, n_tasks=3, util_target=0.4)
    shifted = TaskSet.of(t.with_priority(t.priority + 100) for t in ts)
    assert analyze(ts, "rtmdm").wcrt == analyze(shifted, "rtmdm").wcrt
