"""Unit tests for the crash-tolerant serving layer (``repro.online.durable``)."""

from __future__ import annotations

import json
import os
import types

import pytest

from repro.core import segcache
from repro.hw.presets import get_platform
from repro.online.admission import AdmissionController, CheckpointError
from repro.online.durable import (
    DecisionJournal,
    Envelope,
    IngressGate,
    InjectedCrash,
    InvariantMonitor,
    InvariantViolation,
    JournalError,
    StreamError,
    _crc,
    envelope_stream,
    recover,
    scan_journal,
    serve_durable,
    serve_trace_durable,
)
from repro.online.events import Request, RequestKind, TraceFormatError
from repro.online.runtime import OnlineRuntime
from repro.workload.arrivals import poisson_trace

PLATFORM = get_platform("f746-qspi")


@pytest.fixture(autouse=True)
def fresh_caches():
    segcache.clear_all()
    yield
    segcache.clear_all()


def _admit(time_s, task, model="tinyconv", period_s=0.2, deadline_s=0.0):
    return Request(
        time_s=time_s, kind=RequestKind.ADMIT, task=task, model=model,
        period_s=period_s, deadline_s=deadline_s,
    )


def _remove(time_s, task):
    return Request(time_s=time_s, kind=RequestKind.REMOVE, task=task)


def _rescale(time_s, task, period_s):
    return Request(
        time_s=time_s, kind=RequestKind.RESCALE, task=task, period_s=period_s
    )


def _trace(duration_s=4.0, rate_hz=1.5, seed=7):
    return poisson_trace(duration_s, rate_hz, seed=seed)


def _decision_log(controller):
    return [d.to_dict() for d in controller.decisions]


class TestJournal:
    def test_create_scan_round_trip(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        journal = DecisionJournal.create(path, {"k": 1}, fsync_interval=2)
        journal.append_intent(0, _admit(0.1, "a"))
        journal.append_commit(0, {"outcome": "admitted"})
        journal.append_checkpoint(1, {"state": True})
        journal.close()
        scan = scan_journal(path)
        assert scan.header["config"] == {"k": 1}
        assert scan.truncated_lines == 0
        types_seen = [r["type"] for r in scan.records]
        assert "intent" in types_seen
        assert "commit" in types_seen
        assert "checkpoint" in types_seen
        assert "fsync" in types_seen  # durability markers present
        assert scan.valid_bytes == os.path.getsize(path)

    def test_corrupt_line_stops_scan(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        journal = DecisionJournal.create(path, {}, fsync_interval=100)
        for seq in range(3):
            journal.append_intent(seq, _admit(0.1 * (seq + 1), f"t{seq}"))
        journal.close()
        raw = open(path, "rb").read()
        lines = raw.splitlines(keepends=True)
        # Flip one byte inside the second intent record's payload
        # (line 0 is the header, line 1 the create-time fsync marker).
        target = lines[3]
        lines[3] = target[:-10] + bytes([target[-10] ^ 0xFF]) + target[-9:]
        open(path, "wb").write(b"".join(lines))
        scan = scan_journal(path)
        assert scan.truncated_lines == 2  # the corrupt line and its tail
        assert [r["seq"] for r in scan.records if r["type"] == "intent"] == [0]

    def test_torn_tail_keeps_valid_prefix(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        journal = DecisionJournal.create(path, {}, fsync_interval=100)
        journal.append_intent(0, _admit(0.1, "a"))
        journal.append_intent(1, _admit(0.2, "b"))
        journal.close()
        os.truncate(path, os.path.getsize(path) - 7)
        scan = scan_journal(path)
        assert scan.truncated_lines == 1
        assert [r["seq"] for r in scan.records if r["type"] == "intent"] == [0]

    def test_noncontiguous_intent_rejected(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        journal = DecisionJournal.create(path, {})
        journal.append_intent(0, _admit(0.1, "a"))
        with pytest.raises(JournalError, match="non-contiguous"):
            journal.append_intent(2, _admit(0.2, "b"))
        journal.close()

    def test_closed_journal_rejects_appends(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        journal = DecisionJournal.create(path, {})
        journal.close()
        with pytest.raises(JournalError, match="closed"):
            journal.append_intent(0, _admit(0.1, "a"))

    def test_missing_and_headerless_files(self, tmp_path):
        with pytest.raises(JournalError, match="cannot read"):
            scan_journal(str(tmp_path / "absent.jsonl"))
        path = tmp_path / "bad.jsonl"
        record = {"type": "intent", "seq": 0}
        record["crc"] = _crc(record)
        path.write_text(json.dumps(record) + "\n")
        with pytest.raises(JournalError, match="header"):
            scan_journal(str(path))


class TestSnapshotRestore:
    def _controller(self, platform=PLATFORM):
        return AdmissionController(platform)

    def test_round_trip_preserves_decisions_and_state(self):
        controller = self._controller()
        for request in _trace(duration_s=3.0):
            controller.handle(request)
        state = controller.snapshot()
        clone = self._controller()
        clone.restore(state)
        assert _decision_log(clone) == _decision_log(controller)
        assert sorted(clone.resident) == sorted(controller.resident)
        horizon = PLATFORM.mcu.seconds_to_cycles(10.0)
        assert clone.reserved_sram(horizon) == controller.reserved_sram(horizon)
        # Future decisions stay bit-identical too.
        follow = _admit(3.5, "late", model="lenet5", period_s=0.4)
        assert clone.handle(follow).to_dict() == controller.handle(follow).to_dict()

    def test_config_mismatch_rejected(self):
        controller = self._controller()
        state = controller.snapshot()
        other = self._controller(PLATFORM.with_sram_bytes(64 * 1024))
        with pytest.raises(CheckpointError, match="configuration"):
            other.restore(state)

    def test_snapshot_is_segcache_independent(self):
        controller = self._controller()
        for request in _trace(duration_s=3.0):
            controller.handle(request)
        state = json.loads(json.dumps(controller.snapshot()))  # wire round trip
        segcache.clear_all()  # a cold restart has no warm plan cache
        clone = self._controller()
        clone.restore(state)
        for inst in clone.resident.values():
            assert inst.segments  # full segment payloads travelled along
        follow = _admit(3.5, "late", model="lenet5", period_s=0.4)
        assert clone.handle(follow).outcome == controller.handle(follow).outcome


class TestRecover:
    def test_crash_recovery_replays_only_suffix(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        runtime = OnlineRuntime(PLATFORM)
        trace = _trace()
        baseline = runtime.serve(trace, simulate=False)
        with pytest.raises(InjectedCrash):
            serve_trace_durable(
                runtime, trace, path, checkpoint_interval=4, crash_at=5
            )
        result = serve_trace_durable(
            runtime, trace, path, checkpoint_interval=4, restore=True
        )
        rec = result.recovery
        assert rec is not None
        assert rec.checkpoint_seq == 4
        # Intents 4 and 5 hit the journal before the crash (the crash
        # fires after intent 5 is durable), so exactly those replay.
        assert rec.decisions_replayed == 2
        assert rec.commits_repaired == 1  # intent 5 never committed
        assert rec.truncated_lines == 0
        assert [d.to_dict() for d in result.report.decisions] == [
            d.to_dict() for d in baseline.decisions
        ]

    def test_replay_divergence_detected(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        runtime = OnlineRuntime(PLATFORM)
        serve_trace_durable(runtime, _trace(), path, checkpoint_interval=100)
        lines = open(path, "r", encoding="utf-8").read().splitlines()
        out = []
        for line in lines:
            record = json.loads(line)
            if record["type"] == "commit" and record["seq"] == 2:
                record["decision"]["outcome"] = "rejected"
                record["crc"] = _crc(record)
            out.append(json.dumps(record, sort_keys=True, separators=(",", ":")))
        open(path, "w", encoding="utf-8").write("\n".join(out) + "\n")
        with pytest.raises(JournalError, match="divergence"):
            recover(path, runtime.controller)

    def test_config_mismatch_rejected(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        serve_trace_durable(OnlineRuntime(PLATFORM), _trace(), path)
        small = OnlineRuntime(PLATFORM.with_sram_bytes(64 * 1024))
        with pytest.raises(CheckpointError, match="different configuration"):
            recover(path, small.controller)

    def test_truncated_tail_is_cut_and_replayed_past(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        runtime = OnlineRuntime(PLATFORM)
        trace = _trace()
        baseline = runtime.serve(trace, simulate=False)
        serve_trace_durable(runtime, trace, path, checkpoint_interval=4)
        os.truncate(path, os.path.getsize(path) - 11)
        result = serve_trace_durable(
            runtime, trace, path, checkpoint_interval=4, restore=True
        )
        assert result.recovery.truncated_lines == 1
        assert [d.to_dict() for d in result.report.decisions] == [
            d.to_dict() for d in baseline.decisions
        ]


class TestEnvelope:
    def test_round_trip(self):
        env = Envelope(seq=3, request_id="r3", request=_admit(0.5, "kws"))
        again = Envelope.from_dict(env.to_dict())
        assert again == env

    def test_missing_fields_and_bad_seq(self):
        with pytest.raises(StreamError, match="JSON object"):
            Envelope.from_dict([1, 2])
        with pytest.raises(StreamError, match="request_id"):
            Envelope.from_dict({"seq": 0, "request": {}})
        base = {"request_id": "x", "request": _admit(0.1, "a").to_dict()}
        with pytest.raises(StreamError, match="seq"):
            Envelope.from_dict({**base, "seq": -1})
        with pytest.raises(StreamError, match="seq"):
            Envelope.from_dict({**base, "seq": True})

    def test_malformed_body_raises_trace_error(self):
        with pytest.raises(TraceFormatError, match="kind"):
            Envelope.from_dict(
                {"seq": 0, "request_id": "x", "request": {"time_s": 0.0}}
            )


class TestIngressGate:
    def _envs(self, n):
        return [
            Envelope(seq=i, request_id=f"r{i}", request=_admit(0.1 * (i + 1), f"t{i}"))
            for i in range(n)
        ]

    def test_in_order_passthrough(self):
        gate = IngressGate()
        out = [r.task for env in self._envs(3) for r in gate.offer(env)]
        assert out == ["t0", "t1", "t2"]
        assert gate.stats.duplicates == 0

    def test_duplicates_and_stale_absorbed(self):
        gate = IngressGate()
        envs = self._envs(3)
        assert gate.offer(envs[0])
        assert gate.offer(envs[0]) == []  # stale: seq already emitted
        assert gate.offer(envs[2]) == []  # buffered, waiting on 1
        assert gate.offer(envs[2]) == []  # duplicate of a buffered seq
        emitted = gate.offer(envs[1])
        assert [r.task for r in emitted] == ["t1", "t2"]
        assert gate.stats.stale == 1
        assert gate.stats.duplicates == 1
        assert gate.stats.emitted == 3

    def test_reorder_within_holdback(self):
        gate = IngressGate(holdback=4)
        envs = self._envs(4)
        order = [2, 0, 3, 1]
        out = [r.task for i in order for r in gate.offer(envs[i])]
        assert out == ["t0", "t1", "t2", "t3"]
        # The final offer briefly holds {2, 3, 1} before the emit loop
        # drains the buffer.
        assert gate.stats.max_buffered == 3

    def test_gap_beyond_holdback_fails_loudly(self):
        gate = IngressGate(holdback=2)
        envs = self._envs(5)
        with pytest.raises(StreamError, match="holdback"):
            gate.offer(envs[4])

    def test_dedup_by_request_id_across_retransmits(self):
        gate = IngressGate()
        envs = self._envs(2)
        gate.offer(envs[0])
        # Same id retransmitted under a *future* sequence number must
        # still be dropped by the id window, not replayed.
        clone = Envelope(seq=5, request_id="r0", request=envs[0].request)
        assert gate.offer(clone) == []
        assert gate.stats.duplicates == 1

    def test_validation(self):
        with pytest.raises(ValueError, match="holdback"):
            IngressGate(holdback=0)
        with pytest.raises(ValueError, match="dedup_window"):
            IngressGate(dedup_window=0)
        with pytest.raises(ValueError, match="next_seq"):
            IngressGate(next_seq=-1)


class TestInvariantMonitor:
    def _served_controller(self):
        controller = AdmissionController(PLATFORM)
        monitor = InvariantMonitor(controller)
        for request in _trace():
            controller.handle(request)
            monitor.check(PLATFORM.mcu.seconds_to_cycles(request.time_s))
        return controller, monitor

    def test_all_checks_run_on_clean_serve(self):
        _, monitor = self._served_controller()
        assert set(monitor.counts) == set(InvariantMonitor.CHECKS)
        assert all(count > 0 for count in monitor.counts.values())

    def test_oversubscribed_sram_caught(self):
        controller, monitor = self._served_controller()
        victim_key = next(iter(controller.resident))
        victim = controller.resident[victim_key]
        object.__setattr__(
            victim, "sram_bytes", PLATFORM.usable_sram_bytes + 1
        )
        with pytest.raises(InvariantViolation, match="sram-capacity"):
            monitor.check(0)

    def test_skipped_screen_caught(self):
        controller = AdmissionController(PLATFORM)
        monitor = InvariantMonitor(controller)
        # Tamper the *instance* so every admission test passes without
        # running: the classic "skipped screen" failure mode.
        controller._schedulable = types.MethodType(
            lambda self, tasks: (True, "tampered"), controller
        )
        t = 0.1
        admitted = 0
        for index in range(8):  # overload far past schedulability
            request = _admit(
                t, f"hog{index}", model="resnet8", period_s=0.05
            )
            admitted += controller.handle(request).outcome == "admitted"
            t += 0.05
        assert admitted >= 2  # the tampered test let the overload in
        with pytest.raises(InvariantViolation, match="admitted-screen"):
            monitor.check(PLATFORM.mcu.seconds_to_cycles(t))

    def test_decision_log_tampering_caught(self):
        controller, monitor = self._served_controller()
        from dataclasses import replace

        controller.decisions[1] = replace(controller.decisions[1], seq=7)
        # Check at a cycle past the served horizon: the monitor is only
        # meaningful at the controller's current time or later (earlier
        # reservations have already been pruned away).
        with pytest.raises(InvariantViolation, match="decision-log"):
            monitor.check(PLATFORM.mcu.seconds_to_cycles(100.0))


class TestServeDurable:
    def test_bit_identical_to_plain_serve(self, tmp_path):
        runtime = OnlineRuntime(PLATFORM)
        trace = _trace()
        baseline = runtime.serve(trace, simulate=False)
        result = serve_trace_durable(
            runtime, trace, str(tmp_path / "j.jsonl"), checkpoint_interval=4
        )
        assert [d.to_dict() for d in result.report.decisions] == [
            d.to_dict() for d in baseline.decisions
        ]
        assert [i.to_dict() for i in result.report.instances] == [
            i.to_dict() for i in baseline.instances
        ]
        n = len(baseline.decisions)
        assert result.invariants == {name: n for name in InvariantMonitor.CHECKS}
        assert result.checkpoints_written == n // 4

    def test_perturbed_stream_decides_identically(self, tmp_path):
        runtime = OnlineRuntime(PLATFORM)
        trace = _trace()
        baseline = runtime.serve(trace, simulate=False)
        envelopes = envelope_stream(trace)
        # duplicate every envelope, swap adjacent pairs
        delivery = []
        for i in range(0, len(envelopes) - 1, 2):
            delivery += [envelopes[i + 1], envelopes[i], envelopes[i]]
        if len(envelopes) % 2:
            delivery.append(envelopes[-1])
        result = serve_durable(
            runtime, delivery, trace.duration_s, str(tmp_path / "j.jsonl")
        )
        assert [d.to_dict() for d in result.report.decisions] == [
            d.to_dict() for d in baseline.decisions
        ]
        assert result.gate.duplicates + result.gate.stale > 0

    def test_monitor_off_records_no_checks(self, tmp_path):
        runtime = OnlineRuntime(PLATFORM)
        result = serve_trace_durable(
            runtime, _trace(duration_s=2.0), str(tmp_path / "j.jsonl"),
            monitor=False,
        )
        assert result.invariants == {}

    def test_checkpoint_interval_validated(self, tmp_path):
        runtime = OnlineRuntime(PLATFORM)
        with pytest.raises(ValueError, match="checkpoint_interval"):
            serve_trace_durable(
                runtime, _trace(), str(tmp_path / "j.jsonl"),
                checkpoint_interval=0,
            )
