"""DMA engine model: the transfer resource of the two-resource platform.

The DMA engine moves weight blocks from external memory into SRAM while the
CPU computes.  For scheduling purposes it is a second, serialized resource:

* transfers are **non-preemptive** once started (hardware DMA streams
  cannot be meaningfully checkpointed mid-burst);
* queued transfer requests are arbitrated either in FIFO order or by the
  priority of the owning real-time task (:class:`DmaArbitration`).

The engine itself adds a small per-transfer programming overhead on top of
the external memory's transaction setup.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.hw.mcu import McuSpec
from repro.hw.memory import ExternalMemory


class DmaArbitration(enum.Enum):
    """How queued DMA transfer requests are ordered.

    * ``FIFO`` — strict arrival order (what a naive driver does).
    * ``PRIORITY`` — requests inherit the priority of the owning task;
      the highest-priority pending request is served next.  This is the
      RT-MDM default and is what the schedulability analysis assumes.
    """

    FIFO = "fifo"
    PRIORITY = "priority"


@dataclass(frozen=True)
class DmaEngine:
    """A single-channel DMA engine.

    Attributes:
        name: Engine name for reports.
        program_overhead_s: CPU-side time to program one descriptor.  It is
            charged to the transfer (not the CPU) because drivers program
            the next descriptor from the completion IRQ of the previous
            one.
        arbitration: Queue ordering policy for pending requests.
        crc_check_s: Time to CRC-verify one staged block after a transfer
            error (fault-injection only: a retried transfer re-pays the
            full transfer plus this recheck; see
            :class:`repro.robust.faults.FaultConfig`).
    """

    name: str = "dma1"
    program_overhead_s: float = 0.5e-6
    arbitration: DmaArbitration = DmaArbitration.PRIORITY
    crc_check_s: float = 2e-6

    def __post_init__(self) -> None:
        if self.program_overhead_s < 0:
            raise ValueError(
                f"program_overhead_s must be non-negative, got {self.program_overhead_s}"
            )
        if self.crc_check_s < 0:
            raise ValueError(
                f"crc_check_s must be non-negative, got {self.crc_check_s}"
            )

    def program_cycles(self, mcu: McuSpec) -> int:
        """Descriptor programming overhead in CPU cycles."""
        return mcu.seconds_to_cycles(self.program_overhead_s)

    def transfer_cycles(self, nbytes: int, mcu: McuSpec, memory: ExternalMemory) -> int:
        """Total cycles the engine is busy moving ``nbytes`` into SRAM.

        Includes descriptor programming and the external memory's
        transaction setup + data phase.  Zero-byte transfers are free.
        """
        if nbytes == 0:
            return 0
        return self.program_cycles(mcu) + memory.read_cycles(nbytes, mcu)

    def crc_cycles(self, mcu: McuSpec) -> int:
        """CRC-recheck overhead per transfer retry, in CPU cycles."""
        return mcu.seconds_to_cycles(self.crc_check_s)

    def with_arbitration(self, arbitration: DmaArbitration) -> "DmaEngine":
        """A copy of this engine using a different arbitration policy."""
        return DmaEngine(
            name=self.name,
            program_overhead_s=self.program_overhead_s,
            arbitration=arbitration,
            crc_check_s=self.crc_check_s,
        )
