"""External memory model: the off-chip store for DNN weights.

Weights that do not fit in on-chip memory live in an external device
(QSPI/OSPI NOR flash, SPI or Octal PSRAM, ...).  Two access modes matter
for scheduling:

* **Staged (DMA) access** — bulk sequential reads into SRAM.  Cost is a
  per-transaction setup latency plus size divided by sustained bandwidth.
* **Execute-in-place (XIP)** — the CPU fetches weights word-by-word over
  the external bus while computing.  Cost is modelled as an effective
  bytes/cycle rate that throttles memory-bound layers
  (see :meth:`ExternalMemory.xip_bytes_per_cycle`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.hw.mcu import McuSpec


@dataclass(frozen=True)
class ExternalMemory:
    """An external memory device attached to the MCU.

    Attributes:
        name: Human-readable device name (e.g. ``"QSPI-NOR-133"``).
        read_bandwidth_bps: Sustained sequential read bandwidth in
            bytes/second (after protocol overhead).
        write_bandwidth_bps: Sustained write bandwidth in bytes/second
            (relevant only if activations are spilled; 0 = read-only part).
        setup_latency_s: Per-transaction setup latency in seconds (command
            phase, address phase, dummy cycles, DMA programming).
        xip_efficiency: Fraction of ``read_bandwidth_bps`` achievable under
            XIP's short, scattered accesses (word fetches defeat burst
            mode), in ``(0, 1]``.
        size_bytes: Device capacity; ``0`` means "unbounded for modelling".
    """

    name: str
    read_bandwidth_bps: float
    write_bandwidth_bps: float = 0.0
    setup_latency_s: float = 2.0e-6
    xip_efficiency: float = 0.4
    size_bytes: int = 0

    def __post_init__(self) -> None:
        if self.read_bandwidth_bps <= 0:
            raise ValueError(
                f"read_bandwidth_bps must be positive, got {self.read_bandwidth_bps}"
            )
        if self.write_bandwidth_bps < 0:
            raise ValueError(
                f"write_bandwidth_bps must be non-negative, got {self.write_bandwidth_bps}"
            )
        if self.setup_latency_s < 0:
            raise ValueError(f"setup_latency_s must be non-negative, got {self.setup_latency_s}")
        if not 0 < self.xip_efficiency <= 1:
            raise ValueError(f"xip_efficiency must be in (0, 1], got {self.xip_efficiency}")

    @property
    def writable(self) -> bool:
        """Whether the device supports runtime writes (PSRAM yes, NOR no)."""
        return self.write_bandwidth_bps > 0

    def setup_cycles(self, mcu: McuSpec) -> int:
        """Per-transaction setup cost expressed in CPU cycles."""
        return mcu.seconds_to_cycles(self.setup_latency_s)

    def read_cycles(self, nbytes: int, mcu: McuSpec) -> int:
        """Cycles to read ``nbytes`` sequentially, including setup.

        Zero-byte transfers are free: no transaction is issued.
        """
        if nbytes < 0:
            raise ValueError(f"nbytes must be non-negative, got {nbytes}")
        if nbytes == 0:
            return 0
        data_cycles = int(math.ceil(nbytes * mcu.clock_hz / self.read_bandwidth_bps))
        return self.setup_cycles(mcu) + data_cycles

    def write_cycles(self, nbytes: int, mcu: McuSpec) -> int:
        """Cycles to write ``nbytes`` sequentially, including setup."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be non-negative, got {nbytes}")
        if nbytes == 0:
            return 0
        if not self.writable:
            raise ValueError(f"{self.name} is not writable at runtime")
        data_cycles = int(math.ceil(nbytes * mcu.clock_hz / self.write_bandwidth_bps))
        return self.setup_cycles(mcu) + data_cycles

    def xip_bytes_per_cycle(self, mcu: McuSpec) -> float:
        """Effective XIP fetch rate in bytes per CPU cycle.

        Under XIP, weight fetches are short and scattered, so only a
        fraction (``xip_efficiency``) of the sequential bandwidth is
        realized.
        """
        return self.read_bandwidth_bps * self.xip_efficiency / mcu.clock_hz

    def scaled(self, bandwidth_factor: float) -> "ExternalMemory":
        """A copy with read/write bandwidth scaled by ``bandwidth_factor``.

        Used by the bandwidth-sweep experiment (EXP-F6).
        """
        if bandwidth_factor <= 0:
            raise ValueError(f"bandwidth_factor must be positive, got {bandwidth_factor}")
        return ExternalMemory(
            name=f"{self.name}x{bandwidth_factor:g}",
            read_bandwidth_bps=self.read_bandwidth_bps * bandwidth_factor,
            write_bandwidth_bps=self.write_bandwidth_bps * bandwidth_factor,
            setup_latency_s=self.setup_latency_s,
            xip_efficiency=self.xip_efficiency,
            size_bytes=self.size_bytes,
        )
