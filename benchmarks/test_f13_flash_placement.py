"""Benchmark for EXP-F13: internal-flash weight placement (extension)."""

from conftest import bench_experiment


def test_f13_flash_placement(benchmark):
    result = bench_experiment(benchmark, "EXP-F13", n_sets=8)
    for row in result.rows:
        util, external_only, with_flash, _ = row
        assert with_flash >= external_only, (
            f"flash placement must not hurt admission at U={util}"
        )
