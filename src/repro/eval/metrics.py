"""Evaluation metrics: schedulability ratios, miss ratios, tightness."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.sched.simulator import SimResult


def schedulability_ratio(verdicts: Sequence[bool]) -> float:
    """Fraction of task sets admitted."""
    if not verdicts:
        raise ValueError("verdicts must be non-empty")
    return sum(verdicts) / len(verdicts)


def miss_ratio(result: SimResult) -> float:
    """Fraction of released jobs that missed (or never finished)."""
    released = sum(s.jobs for s in result.stats.values())
    if released == 0:
        return 0.0
    return result.total_misses / released


def tightness_ratios(
    result: SimResult, bounds: Dict[str, Optional[int]]
) -> List[float]:
    """Per-task ``observed_max / analytic_bound`` ratios.

    Only tasks with a bound and at least one finished job contribute.
    Values must be <= 1.0 for a safe analysis (property-tested).
    """
    ratios = []
    for name, stats in result.stats.items():
        bound = bounds.get(name)
        observed = stats.max_response
        if bound and observed is not None:
            ratios.append(observed / bound)
    return ratios


def quantiles(values: Sequence[float], points: Sequence[float]) -> List[Optional[float]]:
    """Simple inclusive quantiles (no interpolation beyond nearest rank)."""
    if not values:
        return [None for _ in points]
    ordered = sorted(values)
    result = []
    for p in points:
        if not 0 <= p <= 1:
            raise ValueError(f"quantile points must be in [0, 1], got {p}")
        rank = min(len(ordered) - 1, max(0, round(p * (len(ordered) - 1))))
        result.append(ordered[rank])
    return result


def latency_stats(
    values: Sequence[float], digits: int = 1
) -> Dict[str, Optional[float]]:
    """The shared latency-metrics shape: n/mean/p50/p95/p99/max.

    One dict layout used by ``ServeReport``, ``FleetReport`` and the
    experiment drivers' meta blocks, so single-device and fleet-scale
    reports stay field-compatible.  Empty input yields ``n == 0`` with
    every statistic ``None``.
    """
    if not values:
        return {"n": 0, "mean": None, "p50": None, "p95": None, "p99": None,
                "max": None}
    ordered = sorted(values)
    p50, p95, p99 = quantiles(ordered, (0.5, 0.95, 0.99))
    return {
        "n": len(ordered),
        "mean": round(sum(ordered) / len(ordered), digits),
        "p50": round(p50, digits),
        "p95": round(p95, digits),
        "p99": round(p99, digits),
        "max": round(ordered[-1], digits),
    }


def speedup(baseline: float, improved: float) -> float:
    """Baseline-over-improved ratio (>1 means ``improved`` is faster)."""
    if improved <= 0:
        raise ValueError(f"improved must be positive, got {improved}")
    return baseline / improved
