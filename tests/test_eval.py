"""Unit tests for the evaluation harness (systems, metrics, reporting)."""

import random

import pytest

from conftest import make_task
from repro.eval.metrics import (
    miss_ratio,
    quantiles,
    schedulability_ratio,
    speedup,
    tightness_ratios,
)
from repro.eval.reporting import ExperimentResult, render
from repro.eval.systems import LABELS, SYSTEMS, admit, derive_taskset
from repro.hw.presets import get_platform
from repro.sched.simulator import SimConfig, simulate
from repro.sched.task import TaskSet
from repro.workload.taskset import generate_case

PLATFORM = get_platform("f746-qspi")


def _case(seed=7, util=0.4):
    return generate_case(PLATFORM, util, random.Random(seed), n_tasks=3)


class TestSystems:
    def test_every_system_derives_a_taskset(self):
        case = _case()
        assert case.feasible
        for system in SYSTEMS:
            taskset, method = derive_taskset(system, case)
            assert len(taskset) == len(case.taskset)
            assert method in ("rtmdm", "oblivious")
            assert system in LABELS

    def test_rtmdm_is_identity(self):
        case = _case()
        taskset, _ = derive_taskset("rtmdm", case)
        assert taskset is case.taskset

    def test_sequential_has_no_dma_traffic(self):
        case = _case()
        taskset, _ = derive_taskset("sequential", case)
        assert all(t.total_load == 0 for t in taskset)

    def test_npwhole_is_single_segment(self):
        case = _case()
        taskset, _ = derive_taskset("np-whole", case)
        assert all(t.num_segments == 1 for t in taskset)

    def test_xip_matches_refined_layers(self):
        case = _case()
        taskset, _ = derive_taskset("xip", case)
        for task in taskset:
            assert task.num_segments == case.refined[task.name].num_layers

    def test_unknown_system(self):
        with pytest.raises(ValueError, match="unknown system"):
            derive_taskset("quantum", _case())

    def test_infeasible_case_rejected_by_all(self):
        tiny = PLATFORM.with_sram_bytes(20 * 1024)
        case = generate_case(
            tiny, 0.5, random.Random(2), model_pool=("mobilenet-v1-0.25",), n_tasks=3
        )
        assert not case.feasible
        for system in SYSTEMS:
            assert not admit(system, case)

    def test_admit_consistency_with_simulation(self):
        case = _case()
        if admit("rtmdm", case):
            result = simulate(
                case.taskset,
                SimConfig(horizon=20 * max(t.period for t in case.taskset)),
            )
            assert result.no_misses


class TestMetrics:
    def test_schedulability_ratio(self):
        assert schedulability_ratio([True, False, True, True]) == 0.75
        with pytest.raises(ValueError):
            schedulability_ratio([])

    def test_miss_ratio(self):
        task = make_task("t", [(0, 150)], period=100)
        result = simulate(TaskSet.of([task]), SimConfig(horizon=1000))
        assert 0 < miss_ratio(result) <= 1.0

    def test_miss_ratio_zero_for_idle(self):
        task = make_task("t", [(0, 10)], period=100, phase=5000)
        result = simulate(TaskSet.of([task]), SimConfig(horizon=1000))
        assert miss_ratio(result) == 0.0

    def test_tightness_ratios(self):
        task = make_task("t", [(0, 100)], period=1000)
        result = simulate(TaskSet.of([task]), SimConfig(horizon=5000))
        ratios = tightness_ratios(result, {"t": 200})
        assert ratios == [0.5]
        assert tightness_ratios(result, {"t": None}) == []

    def test_quantiles(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0]
        assert quantiles(values, (0.0, 0.5, 1.0)) == [1.0, 3.0, 5.0]
        assert quantiles([], (0.5,)) == [None]
        with pytest.raises(ValueError):
            quantiles(values, (1.5,))

    def test_speedup(self):
        assert speedup(10.0, 5.0) == 2.0
        with pytest.raises(ValueError):
            speedup(10.0, 0.0)


class TestReporting:
    def _result(self):
        return ExperimentResult(
            exp_id="EXP-X",
            title="demo",
            columns=("name", "value", "flag"),
            rows=(("alpha", 1.5, True), ("beta", None, False)),
            notes="a note",
        )

    def test_render_contains_all_cells(self):
        text = render(self._result())
        assert "EXP-X" in text and "demo" in text
        assert "alpha" in text and "1.500" in text and "yes" in text
        assert "-" in text and "no" in text
        assert "note: a note" in text

    def test_column_extraction(self):
        result = self._result()
        assert result.column("name") == ["alpha", "beta"]
        with pytest.raises(ValueError):
            result.column("missing")

    def test_large_numbers_formatted(self):
        result = ExperimentResult(
            "E", "t", ("n",), ((1_234_567,), (1234.5,)),
        )
        text = render(result)
        assert "1,234,567" in text and "1,234" in text
