"""Property tests for incremental RTA fixpoints and fold eligibility.

Two contracts introduced by the performance work:

* **Warm-start soundness** — seeding a response-time fixpoint iteration
  from a committed value of a *dominated* problem (same site, pointwise
  smaller demand) converges to exactly the least fixpoint a cold start
  finds.  The sandwich argument (cold start <= warm seed <= lfp forces
  equal limits under a monotone recurrence) is exercised here over
  random task sets and ascending inflation ladders, for the low-level
  ``fp_*_wcrt`` bounds and the full ``analyze`` pipeline alike.

* **Fold stand-down** — steady-state folding may only engage for fully
  deterministic, state-free configurations.  Every nondeterministic or
  stateful :class:`SimConfig` hook (traces, abort-on-miss, sporadic
  releases, fault injection, escalation, recovery, DEGRADE overload
  state) must force ``_fold_eligible`` off, and such runs must report
  zero folding telemetry.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import random_taskset
from repro.core.analysis import METHODS, analyze
from repro.robust.escalation import EscalationConfig
from repro.robust.faults import FaultConfig
from repro.robust.overload import DegradeConfig, OverrunPolicy
from repro.robust.recovery import RecoveryConfig
from repro.sched.rta import (
    FixpointCache,
    RtaTask,
    fp_nonpreemptive_wcrt,
    fp_preemptive_wcrt,
)
from repro.sched.simulator import SimConfig, Simulator, simulate
from repro.sched.task import inflate_compute

seeds = st.integers(0, 10_000)

#: Ascending, so each rung's demand dominates the committed one — the
#: precondition warm starts require.
LADDER = (1.0, 1.08, 1.3, 1.75)


@given(seeds, st.sampled_from(METHODS))
@settings(max_examples=40, deadline=None)
def test_warm_analyze_matches_cold(seed, method):
    rng = random.Random(seed)
    ts = random_taskset(rng, n_tasks=rng.randint(2, 4), util_target=0.55)
    cache = FixpointCache()
    for factor in LADDER:
        inflated = inflate_compute(ts, factor)
        cold = analyze(inflated, method)
        warm = analyze(inflated, method, cache=cache, warm=True)
        cache.commit()
        assert warm.wcrt == cold.wcrt
        assert warm.schedulable == cold.schedulable


def _rta_tasks(rng: random.Random, factor: float = 1.0):
    n = rng.randint(2, 4)
    tasks = []
    for i in range(n):
        period = rng.randint(200, 4000)
        compute = max(1, int(period * rng.uniform(0.08, 0.28)))
        tasks.append(
            RtaTask(
                name=f"t{i}",
                exec_cycles=int(compute * factor),
                period=period,
                deadline=rng.randint(max(2, period // 2), period),
                priority=i,
                jitter=rng.choice([0, rng.randint(0, period // 4)]),
                blocking=rng.choice([0, rng.randint(0, compute)]),
            )
        )
    return tasks


@given(seeds, st.booleans())
@settings(max_examples=60, deadline=None)
def test_warm_fp_wcrt_matches_cold(seed, preemptive):
    wcrt = fp_preemptive_wcrt if preemptive else fp_nonpreemptive_wcrt
    cache = FixpointCache()
    for factor in LADDER:
        # Fresh rng per rung: identical draws except the inflated
        # exec_cycles, so each warm site sees a dominating re-ask.
        tasks = _rta_tasks(random.Random(seed), factor)
        for i, task in enumerate(tasks):
            cold = wcrt(tasks, task)
            warm = wcrt(tasks, task, cache=cache, warm_key=("slot", i))
            assert warm == cold
        cache.commit()


@given(seeds, st.sampled_from(METHODS))
@settings(max_examples=30, deadline=None)
def test_exact_memo_matches_fresh(seed, method):
    """Byte-identical re-asks hit the exact memo and must return the
    same bounds a cache-free evaluation computes."""
    rng = random.Random(seed)
    ts = random_taskset(rng, n_tasks=3, util_target=0.5)
    cache = FixpointCache()
    first = analyze(ts, method, cache=cache)
    again = analyze(ts, method, cache=cache)
    fresh = analyze(ts, method)
    assert first.wcrt == fresh.wcrt
    assert again.wcrt == fresh.wcrt
    assert cache.counters()["exact_hits"] > 0


def _nondeterministic_hooks():
    """One SimConfig override per hook that must disable folding."""
    return [
        dict(record_trace=True),
        dict(abort_on_miss=True),
        dict(sporadic_slack=0.25),
        dict(faults=FaultConfig(dma_fault_prob=0.1)),
        dict(escalation=EscalationConfig(crc_fault_prob=0.1)),
        dict(
            faults=FaultConfig(dma_fault_prob=0.1),
            recovery=RecoveryConfig(),
        ),
        dict(overrun=OverrunPolicy.DEGRADE, degrade=None),  # filled per-set
    ]


HOOK_INDEX = st.integers(0, len(_nondeterministic_hooks()) - 1)


@given(seeds, HOOK_INDEX)
@settings(max_examples=60, deadline=None)
def test_fold_disabled_under_nondeterministic_hooks(seed, hook_index):
    rng = random.Random(seed)
    ts = random_taskset(rng, n_tasks=rng.randint(2, 3), util_target=0.5)
    overrides = _nondeterministic_hooks()[hook_index]
    if "degrade" in overrides:
        overrides["degrade"] = DegradeConfig(
            fallbacks={t.name: t.segments[:1] for t in ts}
        )
    horizon = 8 * max(t.period for t in ts)
    config = SimConfig(horizon=horizon, **overrides)
    assert not Simulator(ts, config)._fold_eligible
    result = simulate(ts, config)
    assert result.fold_cycles == 0
    assert result.fold_jobs_skipped == 0
    # Vacuity guard: the same run minus the hook IS fold-eligible.
    assert Simulator(ts, SimConfig(horizon=horizon))._fold_eligible
