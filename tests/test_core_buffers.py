"""Unit tests for the SRAM buffer planner."""

import pytest

from repro.core.buffers import BUFFER_ALIGN, plan_sram
from repro.core.segmentation import search_segmentation
from repro.dnn.models import refine_model
from repro.dnn.quantization import INT8
from repro.dnn.zoo import build_model
from repro.hw.presets import get_platform

PLATFORM = get_platform("f746-qspi")


def _segmented(name, budget):
    model = refine_model(build_model(name), INT8, max(4096, budget // 6))
    return search_segmentation(model, PLATFORM, budget, INT8, buffers=2)


class TestPlanSram:
    def test_plan_fits_and_is_disjoint(self):
        plan = plan_sram(
            [
                ("kws", _segmented("ds-cnn", 64 * 1024)),
                ("anomaly", _segmented("autoencoder", 96 * 1024)),
            ],
            PLATFORM,
        )
        assert plan.fits
        plan.verify_disjoint()
        assert plan.free_bytes == plan.capacity - plan.used

    def test_regions_are_aligned(self):
        plan = plan_sram([("kws", _segmented("ds-cnn", 64 * 1024))], PLATFORM)
        for bp in plan.plans:
            for region in bp.regions:
                assert region.offset % BUFFER_ALIGN == 0
                assert region.size % BUFFER_ALIGN == 0

    def test_slot_count_matches_buffers(self):
        seg = _segmented("ds-cnn", 64 * 1024)
        plan = plan_sram([("kws", seg)], PLATFORM)
        bp = plan.plan_for("kws")
        assert len(bp.slots) == seg.buffers
        assert all(s.size == bp.slot_bytes for s in bp.slots)
        assert bp.slot_bytes >= seg.max_segment_weight_bytes

    def test_total_bytes_accounting(self):
        plan = plan_sram([("kws", _segmented("ds-cnn", 64 * 1024))], PLATFORM)
        bp = plan.plan_for("kws")
        assert bp.total_bytes == sum(r.size for r in bp.regions)
        assert plan.used == bp.total_bytes

    def test_overflow_detected(self):
        small = PLATFORM.with_sram_bytes(48 * 1024)
        seg = _segmented("autoencoder", 200 * 1024)
        plan = plan_sram([("big", seg)], small)
        assert not plan.fits
        assert plan.free_bytes < 0

    def test_plan_for_unknown_task(self):
        plan = plan_sram([("kws", _segmented("ds-cnn", 64 * 1024))], PLATFORM)
        with pytest.raises(KeyError):
            plan.plan_for("nope")

    def test_multiple_tasks_packed_back_to_back(self):
        plan = plan_sram(
            [
                ("a", _segmented("tinyconv", 32 * 1024)),
                ("b", _segmented("lenet5", 64 * 1024)),
            ],
            PLATFORM,
        )
        ends = [max(r.end for r in bp.regions) for bp in plan.plans]
        starts = [min(r.offset for r in bp.regions) for bp in plan.plans]
        assert starts[1] == ends[0]  # no gap between task allocations
