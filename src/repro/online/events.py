"""Timestamped request traces for the online runtime.

A :class:`RequestTrace` is the runtime's entire input: a time-ordered
sequence of :class:`Request` events over a bounded horizon.  Traces are
plain data with a JSON round-trip so they can be generated
(:mod:`repro.workload.arrivals`), saved, replayed (``rtmdm serve``) and
diffed across runs.

Parsing is strict: a malformed trace raises :class:`TraceFormatError`
(a typed error carrying the offending line number and request index)
instead of leaking ``KeyError``/``ValueError`` tracebacks into callers.
The on-disk format carries an explicit ``version`` field
(:data:`TRACE_FORMAT_VERSION`); unknown versions and unknown schemas are
rejected up front so future format changes fail loudly.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

#: Trace file schema tag and format version (``rtmdm-trace/1``).
TRACE_SCHEMA = "rtmdm-trace/1"
TRACE_FORMAT_VERSION = 1


class TraceFormatError(ValueError):
    """A request trace (or one request dict) failed strict validation.

    Attributes:
        line: 1-based line number in the source text where the offending
            request starts (``None`` when the text is unavailable, e.g.
            when validating an already-parsed dict).
        index: 0-based index of the offending request in the trace
            (``None`` for document-level errors).
    """

    def __init__(
        self,
        message: str,
        line: Optional[int] = None,
        index: Optional[int] = None,
    ) -> None:
        where = []
        if index is not None:
            where.append(f"request #{index}")
        if line is not None:
            where.append(f"line {line}")
        prefix = f"[{', '.join(where)}] " if where else ""
        super().__init__(f"{prefix}{message}")
        self.line = line
        self.index = index


class RequestKind(enum.Enum):
    """What a deployment request asks for."""

    ADMIT = "admit"
    REMOVE = "remove"
    RESCALE = "rescale"


@dataclass(frozen=True)
class Request:
    """One deployment request.

    Attributes:
        time_s: Arrival time in seconds from trace start.
        kind: ``ADMIT`` (start running a model periodically), ``REMOVE``
            (stop it), or ``RESCALE`` (change its rate).
        task: Logical task name the request refers to.
        model: Zoo model name (``ADMIT`` only).
        period_s: Requested period in seconds (``ADMIT``/``RESCALE``).
        deadline_s: Relative deadline in seconds; ``0`` means implicit
            (deadline = period).
    """

    time_s: float
    kind: RequestKind
    task: str
    model: str = ""
    period_s: float = 0.0
    deadline_s: float = 0.0

    def __post_init__(self) -> None:
        if self.time_s < 0:
            raise ValueError(f"request time must be >= 0, got {self.time_s}")
        if not self.task:
            raise ValueError("request needs a task name")
        if self.kind is RequestKind.ADMIT and not self.model:
            raise ValueError(f"ADMIT for {self.task!r} needs a model name")
        if self.kind in (RequestKind.ADMIT, RequestKind.RESCALE):
            if self.period_s <= 0:
                raise ValueError(
                    f"{self.kind.value} for {self.task!r} needs period_s > 0"
                )
        if self.deadline_s < 0 or (
            self.period_s > 0 and self.deadline_s > self.period_s
        ):
            raise ValueError(
                f"{self.task!r}: deadline_s must be in [0, period_s], got "
                f"{self.deadline_s} with period {self.period_s}"
            )

    def to_dict(self) -> Dict:
        d = {"time_s": self.time_s, "kind": self.kind.value, "task": self.task}
        if self.model:
            d["model"] = self.model
        if self.period_s:
            d["period_s"] = self.period_s
        if self.deadline_s:
            d["deadline_s"] = self.deadline_s
        return d

    @classmethod
    def from_dict(
        cls,
        d: Dict,
        line: Optional[int] = None,
        index: Optional[int] = None,
    ) -> "Request":
        """Strictly validate and build one request.

        Raises:
            TraceFormatError: the dict is not an object, misses a
                required field, names an unknown :class:`RequestKind`,
                has a non-numeric timing field, or fails the request's
                own semantic validation.
        """
        if not isinstance(d, dict):
            raise TraceFormatError(
                f"request must be a JSON object, got {type(d).__name__}",
                line=line, index=index,
            )
        for field in ("time_s", "kind", "task"):
            if field not in d:
                raise TraceFormatError(
                    f"missing required field {field!r}", line=line, index=index
                )
        try:
            kind = RequestKind(d["kind"])
        except ValueError:
            known = ", ".join(k.value for k in RequestKind)
            raise TraceFormatError(
                f"unknown request kind {d['kind']!r} (known: {known})",
                line=line, index=index,
            ) from None
        try:
            return cls(
                time_s=float(d["time_s"]),
                kind=kind,
                task=str(d["task"]),
                model=str(d.get("model", "")),
                period_s=float(d.get("period_s", 0.0)),
                deadline_s=float(d.get("deadline_s", 0.0)),
            )
        except (TypeError, ValueError) as exc:
            raise TraceFormatError(str(exc), line=line, index=index) from exc


@dataclass(frozen=True)
class RequestTrace:
    """A bounded, time-ordered request sequence.

    Attributes:
        requests: Events in non-decreasing time order.
        duration_s: Simulation horizon; releases stop here, but released
            jobs still run to completion.
    """

    requests: Tuple[Request, ...]
    duration_s: float

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ValueError(f"duration_s must be > 0, got {self.duration_s}")
        times = [r.time_s for r in self.requests]
        if any(b < a for a, b in zip(times, times[1:])):
            raise ValueError("requests must be in non-decreasing time order")
        if times and times[-1] > self.duration_s:
            raise ValueError(
                f"last request at {times[-1]} s exceeds duration {self.duration_s} s"
            )

    @classmethod
    def of(cls, requests: Iterable[Request], duration_s: float) -> "RequestTrace":
        """Build a trace, sorting events by (time, original order)."""
        ordered = sorted(
            enumerate(requests), key=lambda pair: (pair[1].time_s, pair[0])
        )
        return cls(tuple(r for _, r in ordered), duration_s)

    def __len__(self) -> int:
        return len(self.requests)

    def __iter__(self):
        return iter(self.requests)

    def to_json(self) -> str:
        payload = {
            "schema": TRACE_SCHEMA,
            "version": TRACE_FORMAT_VERSION,
            "duration_s": self.duration_s,
            "requests": [r.to_dict() for r in self.requests],
        }
        return json.dumps(payload, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "RequestTrace":
        """Parse a trace file, rejecting malformed input with typed errors.

        Raises:
            TraceFormatError: unparseable JSON (with the decoder's line
                number), wrong/unknown schema or format version, missing
                document fields, or any invalid request (with its line
                number and index).
        """
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise TraceFormatError(
                f"invalid JSON: {exc.msg}", line=exc.lineno
            ) from exc
        if not isinstance(payload, dict):
            raise TraceFormatError(
                f"trace document must be a JSON object, got "
                f"{type(payload).__name__}"
            )
        schema = payload.get("schema", TRACE_SCHEMA)
        if schema != TRACE_SCHEMA:
            raise TraceFormatError(
                f"unknown trace schema {schema!r} (expected {TRACE_SCHEMA!r})"
            )
        version = payload.get("version", TRACE_FORMAT_VERSION)
        if version != TRACE_FORMAT_VERSION:
            raise TraceFormatError(
                f"unsupported trace format version {version!r} "
                f"(this build reads version {TRACE_FORMAT_VERSION})"
            )
        for field in ("duration_s", "requests"):
            if field not in payload:
                raise TraceFormatError(f"missing required field {field!r}")
        if not isinstance(payload["requests"], list):
            raise TraceFormatError(
                f"'requests' must be a JSON array, got "
                f"{type(payload['requests']).__name__}"
            )
        lines = _request_lines(text, len(payload["requests"]))
        requests: List[Request] = [
            Request.from_dict(d, line=lines.get(i), index=i)
            for i, d in enumerate(payload["requests"])
        ]
        try:
            duration = float(payload["duration_s"])
        except (TypeError, ValueError) as exc:
            raise TraceFormatError(
                f"'duration_s' must be a number, got "
                f"{payload['duration_s']!r}"
            ) from exc
        try:
            return cls.of(requests, duration)
        except ValueError as exc:
            raise TraceFormatError(str(exc)) from exc


def _request_lines(text: str, count: int) -> Dict[int, int]:
    """Map request index -> 1-based source line of its opening brace.

    Walks the raw text with :meth:`json.JSONDecoder.raw_decode` from the
    start of the ``"requests"`` array, so error messages can point at the
    exact line of a bad request.  Best-effort: returns partial (or empty)
    maps for texts it cannot walk — callers fall back to index-only
    messages.
    """
    lines: Dict[int, int] = {}
    anchor = text.find('"requests"')
    if anchor < 0:
        return lines
    start = text.find("[", anchor)
    if start < 0:
        return lines
    decoder = json.JSONDecoder()
    pos = start + 1
    for index in range(count):
        while pos < len(text) and text[pos] in " \t\r\n,":
            pos += 1
        if pos >= len(text) or text[pos] == "]":
            break
        lines[index] = text.count("\n", 0, pos) + 1
        try:
            _, pos = decoder.raw_decode(text, pos)
        except json.JSONDecodeError:
            break
    return lines
